package interp

import (
	"bytes"
	"testing"

	"fgpsim/internal/ir"
)

// makeProgram assembles a small program by hand: read bytes, sum them,
// write the low byte of the sum, repeat until EOF.
func makeProgram() *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	// b0: r5 = 0 (sum); jmp b1
	b0 := &ir.Block{
		Body: []ir.Node{{Op: ir.Const, Dst: 5, Imm: 0}},
		Term: ir.Node{Op: ir.Jmp, Target: 1},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	// b1: r6 = getc(0); r7 = r6 >= 0; br r7 -> b2 else b3
	b1 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 8, Imm: 0},
			{Op: ir.Sys, Dst: 6, A: 8, B: ir.NoReg, Imm: ir.SysGetc},
			{Op: ir.Ge, Dst: 7, A: 6, B: 8},
		},
		Term: ir.Node{Op: ir.Br, A: 7, Target: 2},
		Fall: 3,
	}
	p.AddBlock(0, b1)
	// b2: r5 += r6; putc(r5); jmp b1
	b2 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Add, Dst: 5, A: 5, B: 6},
			{Op: ir.Sys, Dst: 9, A: 5, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Jmp, Target: 1},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b2)
	// b3: halt
	b3 := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	p.AddBlock(0, b3)
	f.Entry = 0
	return p
}

func TestRunningSum(t *testing.T) {
	p := makeProgram()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, []byte{1, 2, 3}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, []byte{1, 3, 6}) {
		t.Fatalf("output = %v, want [1 3 6]", res.Output)
	}
	if res.RetiredBlocks != 1+3*2+1+1 {
		t.Errorf("retired blocks = %d", res.RetiredBlocks)
	}
}

func TestNodeLimit(t *testing.T) {
	p := makeProgram()
	// Force an infinite loop by making b2 jump to itself... instead use a
	// tiny limit on the normal program.
	_, err := Run(p, []byte{1, 2, 3}, nil, Options{MaxNodes: 5})
	if err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

func TestProfileCollection(t *testing.T) {
	p := makeProgram()
	prof := NewProfile()
	if _, err := Run(p, []byte{1, 2, 3}, nil, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	// b1's branch: taken 3 times (bytes), not taken once (EOF).
	if prof.Taken[1] != 3 || prof.NotTaken[1] != 1 {
		t.Errorf("branch profile taken=%d notTaken=%d, want 3/1", prof.Taken[1], prof.NotTaken[1])
	}
	if prof.Arcs[Arc{1, 2}] != 3 || prof.Arcs[Arc{1, 3}] != 1 {
		t.Errorf("arcs = %v", prof.Arcs)
	}
	if prof.Blocks[2] != 3 {
		t.Errorf("block 2 executed %d times, want 3", prof.Blocks[2])
	}
}

func TestTraceRecording(t *testing.T) {
	p := makeProgram()
	res, err := Run(p, []byte{9}, nil, Options{RecordTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []ir.BlockID{0, 1, 2, 1, 3}
	if len(res.Trace) != len(want) {
		t.Fatalf("trace = %v, want %v", res.Trace, want)
	}
	for i := range want {
		if res.Trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", res.Trace, want)
		}
	}
}

func TestAssertFaultRollsBack(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	// b0: r5 = 1; st [r6+256] = r5; assert r7 != 0 (faults: r7 is 0) -> b1
	//     r5 = 2 (never reached); halt
	b0 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 1},
			{Op: ir.St, A: 6, B: 5, Imm: 256},
			{Op: ir.Assert, A: 7, Expect: true, Target: 1},
			{Op: ir.Const, Dst: 5, Imm: 2},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	// b1: r9 = ld [r6+256]; putc(r9); putc(r5); halt
	b1 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Ld, Dst: 9, A: 6, Imm: 256},
			{Op: ir.Sys, Dst: 10, A: 9, B: ir.NoReg, Imm: ir.SysPutc},
			{Op: ir.Sys, Dst: 10, A: 5, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b1)
	f.Entry = 0
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	res, err := Run(p, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The store and the register write before the fault must be undone:
	// the load sees 0 and r5 is 0 again.
	if !bytes.Equal(res.Output, []byte{0, 0}) {
		t.Fatalf("output = %v, want [0 0] (rollback failed)", res.Output)
	}
	if res.Faults != 1 {
		t.Errorf("faults = %d, want 1", res.Faults)
	}
}

func TestAssertPassExecutesRest(t *testing.T) {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b1 := &ir.Block{ // fault target (unused)
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	b0 := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 1},
			{Op: ir.Assert, A: 5, Expect: true, Target: 1},
			{Op: ir.Const, Dst: 6, Imm: 65},
			{Op: ir.Sys, Dst: 7, A: 6, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, b0)
	p.AddBlock(0, b1)
	f.Entry = 0
	res, err := Run(p, nil, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "A" {
		t.Fatalf("output = %q, want A", res.Output)
	}
	if res.Faults != 0 {
		t.Errorf("faults = %d, want 0", res.Faults)
	}
}

func TestGetcEOFAndStreams(t *testing.T) {
	m := New(makeProgram(), []byte{7}, []byte{42}, Options{})
	if v := m.Syscall(ir.SysGetc, 0, 0); v != 7 {
		t.Errorf("getc(0) = %d, want 7", v)
	}
	if v := m.Syscall(ir.SysGetc, 0, 0); v != -1 {
		t.Errorf("getc(0) at EOF = %d, want -1", v)
	}
	if v := m.Syscall(ir.SysGetc, 1, 0); v != 42 {
		t.Errorf("getc(1) = %d, want 42", v)
	}
	if v := m.Syscall(99, 0, 0); v != -1 {
		t.Errorf("unknown syscall = %d, want -1", v)
	}
}

func TestMemoryClamping(t *testing.T) {
	p := makeProgram()
	m := New(p, nil, nil, Options{})
	// Wild addresses clamp into the guard page instead of crashing.
	m.store(int32(-4), 4, 123, false)
	if v := m.load(int32(-4), 4); v != 123 {
		t.Errorf("clamped load = %d, want 123", v)
	}
	m.store(int32(p.MemSize), 1, 7, false)
	if v := m.load(int32(p.MemSize), 1); v != 7 {
		t.Errorf("clamped byte load = %d", v)
	}
}

func TestByteAndWordAccess(t *testing.T) {
	p := makeProgram()
	m := New(p, nil, nil, Options{})
	m.store(5000, 4, -2, false)
	if v := m.load(5000, 4); v != -2 {
		t.Errorf("word round trip = %d, want -2", v)
	}
	if v := m.load(5000, 1); v != 0xFE {
		t.Errorf("byte view = %d, want 254 (loads zero-extend)", v)
	}
	m.store(5001, 1, 0x7F, false)
	// -2 = FE FF FF FF; overwrite byte 1 with 7F: FE 7F FF FF = -32770.
	if v := m.load(5000, 4); v != -32770 {
		t.Errorf("mixed access = %d, want -32770", v)
	}
}

func TestProfileSerializationRoundTrip(t *testing.T) {
	p := makeProgram()
	prof := NewProfile()
	if _, err := Run(p, []byte{1, 2}, nil, Options{Profile: prof}); err != nil {
		t.Fatal(err)
	}
	data, err := prof.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Arcs) != len(prof.Arcs) {
		t.Errorf("arcs lost: %d -> %d", len(prof.Arcs), len(back.Arcs))
	}
	for a, n := range prof.Arcs {
		if back.Arcs[a] != n {
			t.Errorf("arc %v = %d, want %d", a, back.Arcs[a], n)
		}
	}
	if back.Taken[1] != prof.Taken[1] {
		t.Error("taken counts lost")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	trace := []ir.BlockID{0, 5, 2, 7, 100000}
	back, err := UnmarshalTrace(MarshalTrace(trace))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("length %d, want %d", len(back), len(trace))
	}
	for i := range trace {
		if back[i] != trace[i] {
			t.Errorf("trace[%d] = %d, want %d", i, back[i], trace[i])
		}
	}
	if _, err := UnmarshalTrace([]byte{1, 2, 3}); err == nil {
		t.Error("odd-length trace should fail")
	}
}
