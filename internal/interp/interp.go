// Package interp is the functional (untimed) interpreter for node-IR
// programs. It serves four roles in the reproduction:
//
//  1. Golden reference: every timed engine must produce byte-identical
//     output, which is how the simulators are validated.
//  2. Profiler: it collects the branch-arc densities the basic block
//     enlargement file builder consumes (the paper's first simulation run
//     on input set 1).
//  3. Trace recorder: it records the dynamic basic-block trace used for the
//     perfect branch prediction studies.
//  4. Enlarged-code semantics: it executes enlarged basic blocks
//     transactionally, so assert faults discard the block's work exactly
//     like the checkpointed hardware does.
package interp

import (
	"errors"
	"fmt"

	"fgpsim/internal/ir"
)

// Arc identifies a dynamic control transfer between two blocks.
type Arc struct {
	From, To ir.BlockID
}

// Profile aggregates what a profiling run observed.
type Profile struct {
	// Arcs counts control transfers from a block's terminator to its
	// dynamic successor (conditional branches only; these drive
	// enlargement).
	Arcs map[Arc]int64

	// Taken and NotTaken count conditional branch outcomes per block, which
	// supply the static prediction hints.
	Taken, NotTaken map[ir.BlockID]int64

	// Blocks counts block executions.
	Blocks map[ir.BlockID]int64
}

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{
		Arcs:     make(map[Arc]int64),
		Taken:    make(map[ir.BlockID]int64),
		NotTaken: make(map[ir.BlockID]int64),
		Blocks:   make(map[ir.BlockID]int64),
	}
}

// Options configure a run.
type Options struct {
	// Profile, when non-nil, accumulates branch statistics.
	Profile *Profile

	// RecordTrace records the dynamic block sequence (entry block IDs in
	// execution order), used for perfect branch prediction.
	RecordTrace bool

	// MaxNodes aborts the run after this many retired nodes (0 = no limit),
	// a guard against accidental infinite loops in benchmark code.
	MaxNodes int64
}

// Result is what a completed run produced.
type Result struct {
	Output        []byte
	RetiredNodes  int64
	RetiredBlocks int64
	Faults        int64 // assert faults (enlarged programs only)
	Trace         []ir.BlockID
}

// ErrNodeLimit is returned when Options.MaxNodes is exceeded.
var ErrNodeLimit = errors.New("interp: node limit exceeded")

type undoStore struct {
	addr int64
	size int8
	old  [4]byte
}

// Machine executes a program functionally.
type Machine struct {
	prog *ir.Program
	mem  []byte
	regs [ir.NumRegs]int32

	in     [2][]byte
	inPos  [2]int
	output []byte

	retStack []ir.BlockID // continuation blocks

	opts Options
	res  Result

	// Transactional state for the current block.
	regUndo []regUndo
	memUndo []undoStore
}

type regUndo struct {
	r   ir.Reg
	old int32
}

// New creates a machine for one run. in0 and in1 are the two input streams
// (stream 1 may be nil).
func New(p *ir.Program, in0, in1 []byte, opts Options) *Machine {
	m := &Machine{prog: p, opts: opts}
	m.mem = make([]byte, p.MemSize)
	copy(m.mem[p.DataBase:], p.Data)
	m.in[0] = in0
	m.in[1] = in1
	m.regs[ir.RegSP] = ir.InitialSP(p.MemSize)
	return m
}

// Run executes the program to completion and returns the result.
func Run(p *ir.Program, in0, in1 []byte, opts Options) (*Result, error) {
	m := New(p, in0, in1, opts)
	return m.Run()
}

// clampAddr keeps every memory access inside the simulated memory. Wild
// addresses (possible on wrong paths and in buggy benchmark code) wrap into
// a reserved low page rather than crashing the host.
func (m *Machine) clampAddr(a int32, size int64) int64 {
	addr := int64(uint32(a))
	if addr < 0 || addr+size > int64(len(m.mem)) {
		return 0
	}
	return addr
}

func (m *Machine) load(a int32, size int64) int32 {
	addr := m.clampAddr(a, size)
	if size == 1 {
		return int32(m.mem[addr])
	}
	return int32(uint32(m.mem[addr]) | uint32(m.mem[addr+1])<<8 |
		uint32(m.mem[addr+2])<<16 | uint32(m.mem[addr+3])<<24)
}

func (m *Machine) store(a int32, size int64, v int32, transactional bool) {
	addr := m.clampAddr(a, size)
	if transactional {
		u := undoStore{addr: addr, size: int8(size)}
		copy(u.old[:], m.mem[addr:addr+size])
		m.memUndo = append(m.memUndo, u)
	}
	m.mem[addr] = byte(v)
	if size == 4 {
		m.mem[addr+1] = byte(v >> 8)
		m.mem[addr+2] = byte(v >> 16)
		m.mem[addr+3] = byte(v >> 24)
	}
}

func (m *Machine) setReg(r ir.Reg, v int32, transactional bool) {
	if transactional {
		m.regUndo = append(m.regUndo, regUndo{r, m.regs[r]})
	}
	m.regs[r] = v
}

// Syscall executes a system call against the machine's streams.
func (m *Machine) Syscall(no int64, a, b int32) int32 {
	switch no {
	case ir.SysGetc:
		s := int(a) & 1
		if m.inPos[s] >= len(m.in[s]) {
			return -1
		}
		c := m.in[s][m.inPos[s]]
		m.inPos[s]++
		return int32(c)
	case ir.SysPutc:
		m.output = append(m.output, byte(a))
		return 0
	}
	return -1
}

// Run drives execution block by block.
func (m *Machine) Run() (*Result, error) {
	cur := m.prog.Func(m.prog.Entry).Entry
	for {
		next, halted, err := m.ExecBlock(cur)
		if err != nil {
			return nil, err
		}
		if halted {
			break
		}
		cur = next
	}
	m.res.Output = m.output
	return &m.res, nil
}

// ExecBlock executes one block transactionally and returns the successor.
// Assert faults roll the block back and return the fault target.
func (m *Machine) ExecBlock(id ir.BlockID) (next ir.BlockID, halted bool, err error) {
	b := m.prog.Block(id)
	if m.opts.RecordTrace && b.Orig == id {
		// Entry blocks only; enlarged programs are traced through Orig at
		// retirement by the engines, the interpreter traces originals.
		m.res.Trace = append(m.res.Trace, id)
	}
	tx := false
	for i := range b.Body {
		if b.Body[i].Op == ir.Assert {
			tx = true
			break
		}
	}
	if tx {
		m.regUndo = m.regUndo[:0]
		m.memUndo = m.memUndo[:0]
	}

	nodesDone := int64(0)
	for i := range b.Body {
		n := &b.Body[i]
		nodesDone++
		switch {
		case n.Op.IsPure():
			var a, bb int32
			if n.A != ir.NoReg {
				a = m.regs[n.A]
			}
			if n.B != ir.NoReg {
				bb = m.regs[n.B]
			}
			v, aerr := ir.EvalALU(n.Op, a, bb, n.Imm)
			if aerr != nil {
				return 0, false, aerr
			}
			m.setReg(n.Dst, v, tx)
		case n.Op == ir.Ld:
			m.setReg(n.Dst, m.load(m.regs[n.A]+int32(n.Imm), 4), tx)
		case n.Op == ir.LdB:
			m.setReg(n.Dst, m.load(m.regs[n.A]+int32(n.Imm), 1), tx)
		case n.Op == ir.St:
			m.store(m.regs[n.A]+int32(n.Imm), 4, m.regs[n.B], tx)
		case n.Op == ir.StB:
			m.store(m.regs[n.A]+int32(n.Imm), 1, m.regs[n.B], tx)
		case n.Op == ir.Sys:
			var a, bb int32
			if n.A != ir.NoReg {
				a = m.regs[n.A]
			}
			if n.B != ir.NoReg {
				bb = m.regs[n.B]
			}
			m.setReg(n.Dst, m.Syscall(n.Imm, a, bb), tx)
		case n.Op == ir.Assert:
			taken := m.regs[n.A] != 0
			if taken != n.Expect {
				// Fault: discard the whole block's work.
				m.rollback()
				m.res.Faults++
				return n.Target, false, m.countNodes(0) // discarded work retires nothing
			}
		default:
			return 0, false, fmt.Errorf("interp: unexpected node %s in block %d", n, id)
		}
	}

	m.res.RetiredBlocks++
	if m.opts.Profile != nil {
		m.opts.Profile.Blocks[id]++
	}
	if err := m.countNodes(nodesDone + 1); err != nil { // +1 for the terminator
		return 0, false, err
	}

	t := &b.Term
	switch t.Op {
	case ir.Br:
		taken := m.regs[t.A] != 0
		if m.opts.Profile != nil {
			if taken {
				m.opts.Profile.Taken[id]++
			} else {
				m.opts.Profile.NotTaken[id]++
			}
		}
		if taken {
			next = t.Target
		} else {
			next = b.Fall
		}
		if m.opts.Profile != nil {
			m.opts.Profile.Arcs[Arc{id, next}]++
		}
	case ir.Jmp:
		next = t.Target
	case ir.Call:
		m.retStack = append(m.retStack, b.Fall)
		next = m.prog.Func(t.Callee).Entry
	case ir.Ret:
		if len(m.retStack) == 0 {
			return 0, true, nil
		}
		next = m.retStack[len(m.retStack)-1]
		m.retStack = m.retStack[:len(m.retStack)-1]
	case ir.Halt:
		return 0, true, nil
	}
	return next, false, nil
}

func (m *Machine) countNodes(n int64) error {
	m.res.RetiredNodes += n
	if m.opts.MaxNodes > 0 && m.res.RetiredNodes > m.opts.MaxNodes {
		return ErrNodeLimit
	}
	return nil
}

func (m *Machine) rollback() {
	for i := len(m.memUndo) - 1; i >= 0; i-- {
		u := m.memUndo[i]
		copy(m.mem[u.addr:u.addr+int64(u.size)], u.old[:u.size])
	}
	for i := len(m.regUndo) - 1; i >= 0; i-- {
		m.regs[m.regUndo[i].r] = m.regUndo[i].old
	}
	m.memUndo = m.memUndo[:0]
	m.regUndo = m.regUndo[:0]
}
