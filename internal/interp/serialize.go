package interp

import (
	"encoding/binary"
	"encoding/json"
	"fmt"

	"fgpsim/internal/ir"
)

// profileJSON is the on-disk form of a Profile (map keys with struct types
// cannot be JSON object keys, so arcs are flattened).
type profileJSON struct {
	Arcs     []arcJSON            `json:"arcs"`
	Taken    map[ir.BlockID]int64 `json:"taken"`
	NotTaken map[ir.BlockID]int64 `json:"notTaken"`
	Blocks   map[ir.BlockID]int64 `json:"blocks"`
}

type arcJSON struct {
	From ir.BlockID `json:"from"`
	To   ir.BlockID `json:"to"`
	N    int64      `json:"n"`
}

// Marshal serializes a profile (the statistics file the paper's tools pass
// between the simulator and the enlargement builder).
func (p *Profile) Marshal() ([]byte, error) {
	pj := profileJSON{
		Taken:    p.Taken,
		NotTaken: p.NotTaken,
		Blocks:   p.Blocks,
	}
	for a, n := range p.Arcs {
		pj.Arcs = append(pj.Arcs, arcJSON{a.From, a.To, n})
	}
	return json.MarshalIndent(&pj, "", " ")
}

// UnmarshalProfile parses a serialized profile.
func UnmarshalProfile(data []byte) (*Profile, error) {
	var pj profileJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return nil, err
	}
	p := NewProfile()
	if pj.Taken != nil {
		p.Taken = pj.Taken
	}
	if pj.NotTaken != nil {
		p.NotTaken = pj.NotTaken
	}
	if pj.Blocks != nil {
		p.Blocks = pj.Blocks
	}
	for _, a := range pj.Arcs {
		p.Arcs[Arc{a.From, a.To}] = a.N
	}
	return p, nil
}

// MarshalTrace encodes a dynamic block trace as little-endian 32-bit IDs.
func MarshalTrace(trace []ir.BlockID) []byte {
	out := make([]byte, 4*len(trace))
	for i, id := range trace {
		binary.LittleEndian.PutUint32(out[4*i:], uint32(id))
	}
	return out
}

// UnmarshalTrace decodes a trace written by MarshalTrace.
func UnmarshalTrace(data []byte) ([]ir.BlockID, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("interp: trace length %d not a multiple of 4", len(data))
	}
	trace := make([]ir.BlockID, len(data)/4)
	for i := range trace {
		trace[i] = ir.BlockID(binary.LittleEndian.Uint32(data[4*i:]))
	}
	return trace, nil
}
