package minic

import (
	"fmt"

	"fgpsim/internal/ir"
	"fgpsim/internal/opt"
)

// Options control compilation.
type Options struct {
	// Optimize enables the block-local optimizer (constant folding, copy
	// propagation, local CSE, dead code elimination, jump threading).
	Optimize bool

	// MemSize overrides the simulated memory size (default DefaultMemSize).
	MemSize int64
}

// Compile compiles MiniC source into a node-IR program ready for the
// translating loader. file names the source in error messages.
func Compile(file, src string, o Options) (*ir.Program, error) {
	f, err := Parse(file, src)
	if err != nil {
		return nil, err
	}
	u, err := Analyze(f)
	if err != nil {
		return nil, err
	}
	return generate(u, o)
}

// MustCompile is Compile, panicking on error; for embedded benchmark
// sources that are compiled at startup and covered by tests.
func MustCompile(file, src string, o Options) *ir.Program {
	p, err := Compile(file, src, o)
	if err != nil {
		panic(err)
	}
	return p
}

func generate(u *Unit, o Options) (*ir.Program, error) {
	memSize := o.MemSize
	if memSize == 0 {
		memSize = DefaultMemSize
	}
	p := &ir.Program{MemSize: memSize, DataBase: u.DataBase}

	// Assign function IDs up front so calls resolve during generation.
	fids := make(map[string]ir.FuncID)
	for _, fd := range u.File.Funcs {
		id := ir.FuncID(len(p.Funcs))
		p.Funcs = append(p.Funcs, &ir.Func{ID: id, Name: fd.Name, NumArgs: len(fd.Params)})
		fids[fd.Name] = id
	}
	startID := ir.FuncID(len(p.Funcs))
	p.Funcs = append(p.Funcs, &ir.Func{ID: startID, Name: "_start"})
	p.Entry = startID

	for i, fd := range u.File.Funcs {
		fn := p.Funcs[i]
		g := &cg{unit: u, prog: p, fids: fids, fn: fn, fd: fd, nextV: firstVReg}
		entry := g.newBlock()
		fn.Entry = entry.ID
		g.enter(entry)
		g.emitPrologue()
		g.genStmt(fd.Body)
		if g.err != nil {
			return nil, g.err
		}
		if g.cur != nil {
			// Fell off the end: implicit return (0 for value functions).
			if fd.Ret != TVoid {
				g.emit(ir.Node{Op: ir.Const, Dst: ir.RegRet, Imm: 0})
			}
			g.emitEpilogue()
			g.setTerm(ir.Node{Op: ir.Ret}, ir.NoBlock)
		}
		terminateDeadBlocks(p, fn)

		if o.Optimize {
			opt.Func(p, fn, int(g.nextV))
		}
		frameSize, err := allocFunc(p, fn, int(g.nextV-firstVReg), g.frameOff)
		if err != nil {
			return nil, err
		}
		patchFrames(p, fn, frameSize)
		fn.FrameSize = frameSize
	}

	// _start: call main, then halt.
	start := p.Funcs[startID]
	cont := &ir.Block{Term: ir.Node{Op: ir.Halt}, Fall: ir.NoBlock}
	entry := &ir.Block{Term: ir.Node{Op: ir.Call, Callee: fids["main"]}}
	p.AddBlock(startID, entry)
	p.AddBlock(startID, cont)
	entry.Fall = cont.ID
	start.Entry = entry.ID

	p.Data = append([]byte(nil), u.Data...)
	p.Normalize()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("minic: generated invalid program: %w", err)
	}
	return p, nil
}

// terminateDeadBlocks gives every block the code generator abandoned (joins
// after both arms return, loop exits of infinite loops) a valid terminator.
// They are unreachable, so Halt is safe.
func terminateDeadBlocks(p *ir.Program, fn *ir.Func) {
	for _, id := range fn.Blocks {
		b := p.Blocks[id]
		if b.Term.Op == ir.Nop {
			b.Term = ir.Node{Op: ir.Halt}
			b.Fall = ir.NoBlock
		}
	}
}
