package minic_test

import (
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/minic"
)

// TestNoSentinelImmediatesSurvive: every frame-sentinel placeholder must be
// patched away by the time compilation finishes.
func TestNoSentinelImmediatesSurvive(t *testing.T) {
	p, err := minic.Compile("h.mc", helloSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	const bound = int64(1) << 39
	check := func(n *ir.Node) {
		if n.Imm >= bound || n.Imm <= -bound {
			t.Errorf("unpatched sentinel immediate in %s", n)
		}
	}
	for _, b := range p.Blocks {
		for i := range b.Body {
			check(&b.Body[i])
		}
		check(&b.Term)
	}
}

// TestFrameDiscipline: every function's stack adjustments are balanced —
// the prologue subtracts exactly what each epilogue adds.
func TestFrameDiscipline(t *testing.T) {
	src := `
int leaf(int a) { return a + 1; }
int frame(int a) { int buf[10]; buf[a & 7] = a; return buf[0] + leaf(a); }
int multi(int a) {
	if (a > 0) return a;
	if (a < -10) return -a;
	return 0;
}
int main() { return frame(3) + multi(-1); }
`
	p, err := minic.Compile("f.mc", src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range p.Funcs {
		if f.Name == "_start" {
			continue
		}
		var subs, adds []int64
		for _, id := range f.Blocks {
			b := p.Block(id)
			for i := range b.Body {
				n := &b.Body[i]
				if n.Op == ir.AddI && n.Dst == ir.RegSP && n.A == ir.RegSP {
					if n.Imm < 0 {
						subs = append(subs, -n.Imm)
					} else if n.Imm > 0 {
						adds = append(adds, n.Imm)
					}
				}
			}
		}
		// Calls also adjust sp (argument area), so amounts come in matched
		// multisets rather than a single frame constant. Balance totals per
		// function body shape: each sub amount must appear among the adds.
		counts := map[int64]int{}
		for _, v := range subs {
			counts[v]++
		}
		for _, v := range adds {
			counts[v]--
		}
		for v, c := range counts {
			// Prologue sub (frame) is matched by one add per return path,
			// so adds may exceed subs, never the reverse.
			if c > 1 {
				t.Errorf("%s: stack adjustment %d subtracted %d times more than added", f.Name, v, c)
			}
		}
		if int32(len(subs)) > 0 && f.FrameSize > 0 {
			found := false
			for _, v := range subs {
				if v == int64(f.FrameSize) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: FrameSize %d never subtracted (subs %v)", f.Name, f.FrameSize, subs)
			}
		}
	}
}

// TestLeafFunctionHasNoFrame: a function with no locals, spills, or frame
// params should not adjust the stack pointer at all.
func TestLeafFunctionHasNoFrame(t *testing.T) {
	src := `
int add3(int a, int b, int c) { return a + b + c; }
int main() { return add3(1, 2, 3); }
`
	p, err := minic.Compile("l.mc", src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	f := p.FuncByName("add3")
	if f.FrameSize != 0 {
		t.Fatalf("leaf frame size = %d, want 0", f.FrameSize)
	}
	for _, id := range f.Blocks {
		b := p.Block(id)
		for i := range b.Body {
			n := &b.Body[i]
			if n.Op == ir.AddI && n.Dst == ir.RegSP {
				t.Errorf("leaf function adjusts sp: %s", n)
			}
		}
	}
}

// TestArgumentSlotsAreBelowCallerSP: outgoing arguments are stored at
// negative offsets before the sp adjustment (the red-zone convention).
func TestArgumentSlotsAreBelowCallerSP(t *testing.T) {
	src := `
int f(int a, int b) { return a - b; }
int main() { return f(10, 4); }
`
	p, err := minic.Compile("a.mc", src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	main := p.FuncByName("main")
	sawArgStore := false
	for _, id := range main.Blocks {
		b := p.Block(id)
		for i := range b.Body {
			n := &b.Body[i]
			if n.Op == ir.St && n.A == ir.RegSP && n.Imm < 0 {
				sawArgStore = true
			}
		}
	}
	if !sawArgStore {
		t.Error("no argument stores below sp found in caller")
	}
}
