package minic_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/minic"
)

// exprGen generates random MiniC expressions together with their expected
// values (computed with the same 32-bit semantics the machine defines:
// masked shifts, defined division by zero).
type exprGen struct {
	rng  *rand.Rand
	vars []string
	vals []int32
}

func (g *exprGen) gen(depth int) (string, int32) {
	if depth == 0 || g.rng.Intn(4) == 0 {
		switch g.rng.Intn(3) {
		case 0:
			v := int32(g.rng.Intn(2000) - 1000)
			if v < 0 {
				// Parenthesize negatives so unary minus binds correctly.
				return fmt.Sprintf("(%d)", v), v
			}
			return fmt.Sprintf("%d", v), v
		case 1:
			i := g.rng.Intn(len(g.vars))
			return g.vars[i], g.vals[i]
		default:
			s, v := g.gen(0)
			return "(-" + s + ")", evalPure(ir.Neg, v, 0)
		}
	}
	type binOp struct {
		tok string
		op  ir.Op
	}
	ops := []binOp{
		{"+", ir.Add}, {"-", ir.Sub}, {"*", ir.Mul}, {"/", ir.Div},
		{"%", ir.Rem}, {"&", ir.And}, {"|", ir.Or}, {"^", ir.Xor},
		{"==", ir.Eq}, {"!=", ir.Ne}, {"<", ir.Lt}, {"<=", ir.Le},
		{">", ir.Gt}, {">=", ir.Ge},
	}
	o := ops[g.rng.Intn(len(ops))]
	ls, lv := g.gen(depth - 1)
	rs, rv := g.gen(depth - 1)
	return "(" + ls + " " + o.tok + " " + rs + ")", evalPure(o.op, lv, rv)
}

// evalPure evaluates a known-pure ALU op (the generator only emits those).
func evalPure(op ir.Op, a, b int32) int32 {
	v, err := ir.EvalALU(op, a, b, 0)
	if err != nil {
		panic(err)
	}
	return v
}

// TestRandomExpressions compiles random expressions and checks the machine
// computes exactly what 32-bit semantics dictate, optimizer on and off.
func TestRandomExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for trial := 0; trial < 40; trial++ {
		g := &exprGen{
			rng:  rng,
			vars: []string{"a", "b", "c"},
			vals: []int32{int32(rng.Intn(100) - 50), int32(rng.Intn(1000)), -7},
		}
		expr, want := g.gen(4)
		var sb strings.Builder
		sb.WriteString("void emit(int n) {\n")
		sb.WriteString("\tint d[12]; int i = 0;\n")
		sb.WriteString("\tif (n < 0) { putc('-'); n = -n; }\n")
		sb.WriteString("\tif (n == 0) { putc('0'); return; }\n")
		sb.WriteString("\twhile (n > 0) { d[i] = n % 10; n = n / 10; i++; }\n")
		sb.WriteString("\twhile (i > 0) { i--; putc('0' + d[i]); }\n}\n")
		fmt.Fprintf(&sb, "int main() {\n\tint a = %d;\n\tint b = %d;\n\tint c = %d;\n",
			g.vals[0], g.vals[1], g.vals[2])
		fmt.Fprintf(&sb, "\temit(%s);\n\tputc('\\n');\n\treturn 0;\n}\n", expr)

		// want printed in decimal; MinInt32 negation is defined (stays).
		expected := fmt.Sprintf("%d\n", want)
		if want == -2147483648 {
			continue // printing relies on n = -n, undefined there
		}
		for _, optimize := range []bool{false, true} {
			p, err := minic.Compile("q.mc", sb.String(), minic.Options{Optimize: optimize})
			if err != nil {
				t.Fatalf("trial %d: %v\nexpr: %s", trial, err, expr)
			}
			res, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 22})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if string(res.Output) != expected {
				t.Fatalf("trial %d (optimize=%v): %s = %q, want %q",
					trial, optimize, expr, res.Output, expected)
			}
		}
	}
}

// TestOptimizedMatchesUnoptimized runs a stateful random program both ways
// and compares outputs (the optimizer must be semantics-preserving).
func TestOptimizedMatchesUnoptimized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		var sb strings.Builder
		sb.WriteString("int arr[64];\nint main() {\n\tint i;\n\tint x = 1;\n")
		sb.WriteString("\tfor (i = 0; i < 64; i++) arr[i] = i * 3;\n")
		for k := 0; k < 20; k++ {
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&sb, "\tx = x + arr[%d];\n", rng.Intn(64))
			case 1:
				fmt.Fprintf(&sb, "\tarr[%d] = x ^ %d;\n", rng.Intn(64), rng.Intn(100))
			case 2:
				fmt.Fprintf(&sb, "\tif (x %% %d == 0) x++; else x = x * 3 + 1;\n", 2+rng.Intn(5))
			default:
				fmt.Fprintf(&sb, "\tfor (i = 0; i < %d; i++) x = (x + arr[i]) %% 9973;\n", 2+rng.Intn(10))
			}
		}
		sb.WriteString("\tputc('A' + (x % 26 + 26) % 26);\n\tputc('\\n');\n\treturn 0;\n}\n")

		var outs [2]string
		for oi, optimize := range []bool{false, true} {
			p, err := minic.Compile("s.mc", sb.String(), minic.Options{Optimize: optimize})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			res, err := interp.Run(p, nil, nil, interp.Options{MaxNodes: 1 << 24})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			outs[oi] = string(res.Output)
		}
		if outs[0] != outs[1] {
			t.Fatalf("trial %d: optimizer changed semantics: %q vs %q\n%s",
				trial, outs[0], outs[1], sb.String())
		}
	}
}
