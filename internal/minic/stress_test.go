package minic_test

import (
	"fmt"
	"strings"
	"testing"
)

// TestSpillPressure forces more simultaneously-live values than there are
// allocatable registers, so the linear-scan allocator must spill, and
// verifies the result still computes correctly.
func TestSpillPressure(t *testing.T) {
	var sb strings.Builder
	n := 70 // more than the 58 allocatable registers
	sb.WriteString("int main() {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "\tint v%d = %d;\n", i, i+1)
	}
	// Keep all of them live: sum in reverse order.
	sb.WriteString("\tint sum = 0;\n")
	for i := n - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "\tsum = sum + v%d;\n", i)
	}
	// n(n+1)/2 = 2485 for n=70.
	sb.WriteString("\tputc('0' + sum / 1000);\n")
	sb.WriteString("\tputc('0' + sum / 100 % 10);\n")
	sb.WriteString("\tputc('0' + sum / 10 % 10);\n")
	sb.WriteString("\tputc('0' + sum % 10);\n")
	sb.WriteString("\tputc('\\n');\n\treturn 0;\n}\n")
	runBoth(t, sb.String(), "", "2485\n")
}

// TestSpillPressureInterleaved keeps values live across uses in an
// interleaved pattern that defeats trivial interval splitting.
func TestSpillPressureInterleaved(t *testing.T) {
	var sb strings.Builder
	n := 64
	sb.WriteString("int main() {\n\tint acc = 1;\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "\tint v%d = acc + %d;\n", i, i)
	}
	sb.WriteString("\tint sum = 0;\n")
	for i := 0; i < n; i += 2 {
		fmt.Fprintf(&sb, "\tsum = sum + v%d - v%d;\n", i, i+1)
	}
	// each pair contributes -1: sum = -32
	sb.WriteString("\tputc('0' - sum / 10);\n")
	sb.WriteString("\tputc('0' - sum % 10);\n")
	sb.WriteString("\tputc('\\n');\n\treturn 0;\n}\n")
	runBoth(t, sb.String(), "", "32\n")
}

// TestCallHeavySpilling exercises the call-crossing demotion: values live
// across calls must survive in memory (the fully caller-saved convention).
func TestCallHeavySpilling(t *testing.T) {
	src := `
int id(int x) { return x; }
int main() {
	int a = id(1);
	int b = id(2);
	int c = id(3);
	int d = id(4);
	int e = id(5);
	// All five are live across the calls below.
	int f = id(a + b);
	int g = id(c + d);
	putc('0' + a + b + c + d + e); // 15 -> '?'; use mod to stay printable
	putc('0' + (f + g + e) % 10);  // 3+7+5 = 15 -> 5
	putc('\n');
	return 0;
}
`
	// '0'+15 = '?'
	runBoth(t, src, "", "?5\n")
}

func TestScopeShadowing(t *testing.T) {
	src := `
int x = 1;
int main() {
	putc('0' + x);       // global: 1
	int x = 2;
	putc('0' + x);       // local: 2
	{
		int x = 3;
		putc('0' + x);   // inner: 3
	}
	putc('0' + x);       // back to local: 2
	if (x == 2) { int x = 4; putc('0' + x); }
	for (int x = 5; x == 5; x = 6) putc('0' + x);
	putc('0' + x);       // still 2
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "1232452\n")
}

func TestRecursionDepth(t *testing.T) {
	src := `
int depth(int n) {
	if (n == 0) return 0;
	return 1 + depth(n - 1);
}
int main() {
	int d = depth(200);
	putc('0' + d / 100);
	putc('0' + d / 10 % 10);
	putc('0' + d % 10);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "200\n")
}

// TestMutualRecursion works without forward declarations: sema registers
// every function before checking bodies.
func TestMutualRecursion(t *testing.T) {
	src := `
int isEven(int n) {
	if (n == 0) return 1;
	return isOdd(n - 1);
}
int isOdd(int n) {
	if (n == 0) return 0;
	return isEven(n - 1);
}
int main() {
	putc('0' + isEven(10));
	putc('0' + isOdd(10));
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "10\n")
}

func TestManyArguments(t *testing.T) {
	src := `
int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
	return a + b + c + d + e + f + g + h;
}
int main() {
	int s = sum8(1, 2, 3, 4, 5, 6, 7, 8); // 36
	putc('0' + s / 10);
	putc('0' + s % 10);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "36\n")
}

func TestNestedCallsAsArguments(t *testing.T) {
	src := `
int add(int a, int b) { return a + b; }
int main() {
	putc('0' + add(add(1, 2), add(add(1, 1), 2))); // 3 + 4 = 7
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "7\n")
}

func TestCharIsUnsigned(t *testing.T) {
	src := `
char c = 200;
int main() {
	// Byte loads zero-extend: c reads as 200, not -56.
	if (c > 127) putc('U'); else putc('S');
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "U\n")
}

func TestPointerToPointer(t *testing.T) {
	src := `
int g = 5;
int main() {
	int *p = &g;
	int **pp = &p;
	**pp = 9;
	putc('0' + g);
	putc('0' + **pp);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "99\n")
}

func TestLocalArrayInLoop(t *testing.T) {
	src := `
int main() {
	int hist[8];
	int i;
	for (i = 0; i < 8; i++) hist[i] = 0;
	int c = getc(0);
	while (c >= 0) {
		hist[c & 7]++;
		c = getc(0);
	}
	for (i = 0; i < 8; i++) putc('0' + hist[i]);
	putc('\n');
	return 0;
}
`
	// bytes: 'a'=97 (&7=1), 'b'=98 (2), 'c'=99 (3), 'a' again
	runBoth(t, src, "abca", "02110000\n")
}

func TestWhileWithComplexCondition(t *testing.T) {
	src := `
int main() {
	int i = 0;
	int j = 10;
	while (i < 5 && j > 7 || i == 0) {
		i++;
		j--;
	}
	putc('0' + i);
	putc('0' + j % 10);
	putc('\n');
	return 0;
}
`
	// i=0,j=10 -> loop (i<5&&j>7 true): i=1 j=9; i=2 j=8; i=3 j=7: now
	// (i<5&&j>7)=false, i==0 false -> exit. i=3, j=7.
	runBoth(t, src, "", "37\n")
}

func TestDeepExpressionNesting(t *testing.T) {
	src := `
int main() {
	int x = ((((1 + 2) * (3 + 4)) - ((5 - 6) * (7 - 8))) << 1) % 100;
	// ((3*7) - (-1*-1))*2 = (21-1)*2 = 40
	putc('0' + x / 10);
	putc('0' + x % 10);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "40\n")
}
