package minic

import (
	"fmt"
	"strings"
)

// Format renders a parsed File back to compilable MiniC source. It is the
// inverse of Parse up to formatting: Parse(Format(Parse(src))) accepts every
// program Parse accepts, and the printed program has identical semantics.
// Expressions are fully parenthesized, so operator precedence never needs to
// be reconstructed. The program reducer in internal/difftest leans on this
// to turn mutated ASTs back into source after each deletion attempt.
func Format(f *File) string {
	var p printer
	for _, g := range f.Globals {
		p.global(g)
	}
	if len(f.Globals) > 0 && len(f.Funcs) > 0 {
		p.sb.WriteString("\n")
	}
	for i, fn := range f.Funcs {
		if i > 0 {
			p.sb.WriteString("\n")
		}
		p.funcDecl(fn)
	}
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("\t")
	}
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteString("\n")
}

func declString(typ Type, name string, arrLen int32) string {
	if arrLen > 0 {
		return fmt.Sprintf("%s %s[%d]", typ, name, arrLen)
	}
	return fmt.Sprintf("%s %s", typ, name)
}

func (p *printer) global(g *GlobalDecl) {
	d := declString(g.Type, g.Name, g.ArrLen)
	switch {
	case g.HasInit && g.InitStr != "":
		p.line("%s = %q;", d, g.InitStr)
	case g.HasInit:
		p.line("%s = %d;", d, g.Init)
	default:
		p.line("%s;", d)
	}
}

func (p *printer) funcDecl(fn *FuncDecl) {
	params := make([]string, len(fn.Params))
	for i, pa := range fn.Params {
		params[i] = fmt.Sprintf("%s %s", pa.Type, pa.Name)
	}
	p.line("%s %s(%s) {", fn.Ret, fn.Name, strings.Join(params, ", "))
	p.indent++
	for _, s := range fn.Body.List {
		p.stmt(s)
	}
	p.indent--
	p.line("}")
}

// stmtInline renders a statement without indentation or trailing newline,
// for the header of a for loop. Only the statement forms the parser allows
// there (declaration or expression, both carrying their semicolon) occur.
func stmtInline(s Stmt) string {
	switch s := s.(type) {
	case *DeclStmt:
		if s.Init != nil {
			return fmt.Sprintf("%s = %s;", declString(s.Type, s.Name, s.ArrLen), exprString(s.Init))
		}
		return declString(s.Type, s.Name, s.ArrLen) + ";"
	case *ExprStmt:
		return exprString(s.X) + ";"
	case nil:
		return ";"
	}
	return ";"
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		if s.Init != nil {
			p.line("%s = %s;", declString(s.Type, s.Name, s.ArrLen), exprString(s.Init))
		} else {
			p.line("%s;", declString(s.Type, s.Name, s.ArrLen))
		}
	case *ExprStmt:
		p.line("%s;", exprString(s.X))
	case *IfStmt:
		p.line("if (%s) {", exprString(s.Cond))
		p.indent++
		p.blockBody(s.Then)
		p.indent--
		if s.Else != nil {
			p.line("} else {")
			p.indent++
			p.blockBody(s.Else)
			p.indent--
		}
		p.line("}")
	case *WhileStmt:
		p.line("while (%s) {", exprString(s.Cond))
		p.indent++
		p.blockBody(s.Body)
		p.indent--
		p.line("}")
	case *ForStmt:
		init := ";"
		if s.Init != nil {
			init = stmtInline(s.Init)
		}
		cond := ""
		if s.Cond != nil {
			cond = exprString(s.Cond)
		}
		post := ""
		if s.Post != nil {
			post = exprString(s.Post)
		}
		p.line("for (%s %s; %s) {", init, cond, post)
		p.indent++
		p.blockBody(s.Body)
		p.indent--
		p.line("}")
	case *ReturnStmt:
		if s.X != nil {
			p.line("return %s;", exprString(s.X))
		} else {
			p.line("return;")
		}
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range s.List {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *EmptyStmt:
		p.line(";")
	}
}

// blockBody prints a statement that syntactically is the body of an
// if/while/for whose braces the caller already emitted: block statements are
// flattened, everything else prints as-is.
func (p *printer) blockBody(s Stmt) {
	if b, ok := s.(*BlockStmt); ok {
		for _, inner := range b.List {
			p.stmt(inner)
		}
		return
	}
	p.stmt(s)
}

func exprString(e Expr) string {
	switch e := e.(type) {
	case *IntExpr:
		return fmt.Sprintf("%d", e.Val)
	case *StrExpr:
		return fmt.Sprintf("%q", e.Val)
	case *VarExpr:
		return e.Name
	case *UnExpr:
		return fmt.Sprintf("(%s%s)", e.Op, exprString(e.X))
	case *BinExpr:
		return fmt.Sprintf("(%s %s %s)", exprString(e.X), e.Op, exprString(e.Y))
	case *AssignExpr:
		// Parenthesized so an assignment nested in a comparison (the MiniC
		// idiom `(c = getc(0)) >= 0`) survives the precedence-free printing.
		return fmt.Sprintf("(%s %s %s)", exprString(e.LHS), e.Op, exprString(e.RHS))
	case *IncDecExpr:
		if e.Post {
			return fmt.Sprintf("(%s%s)", exprString(e.X), e.Op)
		}
		return fmt.Sprintf("(%s%s)", e.Op, exprString(e.X))
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", exprString(e.X), exprString(e.Idx))
	case *CallExpr:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
	}
	return "0"
}
