package minic_test

import (
	"testing"

	"fgpsim/internal/interp"
	"fgpsim/internal/minic"
)

// run compiles src and executes it with the given stdin, returning output.
func run(t *testing.T, src string, in string, optimize bool) string {
	t.Helper()
	p, err := minic.Compile("test.mc", src, minic.Options{Optimize: optimize})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	res, err := interp.Run(p, []byte(in), nil, interp.Options{MaxNodes: 50_000_000})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return string(res.Output)
}

// runBoth runs with and without optimization and checks both agree.
func runBoth(t *testing.T, src, in, want string) {
	t.Helper()
	for _, o := range []bool{false, true} {
		got := run(t, src, in, o)
		if got != want {
			t.Errorf("optimize=%v: output = %q, want %q", o, got, want)
		}
	}
}

const helloSrc = `
void puts(char *s) {
	int i;
	i = 0;
	while (s[i] != 0) {
		putc(s[i]);
		i = i + 1;
	}
}
int main() {
	puts("hello, world\n");
	return 0;
}
`

func TestHello(t *testing.T) {
	runBoth(t, helloSrc, "", "hello, world\n")
}

func TestEcho(t *testing.T) {
	src := `
int main() {
	int c;
	c = getc(0);
	while (c >= 0) {
		putc(c);
		c = getc(0);
	}
	return 0;
}
`
	runBoth(t, src, "abc def\nxyz", "abc def\nxyz")
}

func TestArithmetic(t *testing.T) {
	src := `
void putnum(int n) {
	char buf[12];
	int i;
	if (n < 0) { putc('-'); n = -n; }
	i = 0;
	if (n == 0) { buf[0] = '0'; i = 1; }
	while (n > 0) { buf[i] = '0' + n % 10; n = n / 10; i = i + 1; }
	while (i > 0) { i = i - 1; putc(buf[i]); }
	putc('\n');
}
int main() {
	putnum(0);
	putnum(42);
	putnum(-17);
	putnum(6 * 7);
	putnum(100 / 7);
	putnum(100 % 7);
	putnum((1 << 10) - 1);
	putnum(255 & 0x0F);
	putnum(0x10 | 0x01);
	putnum(5 ^ 3);
	putnum(~0);
	putnum(-(1 + 2));
	putnum(10 >> 2);
	return 0;
}
`
	runBoth(t, src, "", "0\n42\n-17\n42\n14\n2\n1023\n15\n17\n6\n-1\n-3\n2\n")
}

func TestComparisonsAndLogic(t *testing.T) {
	src := `
void put01(int v) { if (v) putc('1'); else putc('0'); }
int main() {
	put01(1 < 2);
	put01(2 < 1);
	put01(2 <= 2);
	put01(3 > 2);
	put01(2 >= 3);
	put01(1 == 1);
	put01(1 != 1);
	put01(1 && 0);
	put01(1 && 2);
	put01(0 || 0);
	put01(0 || 3);
	put01(!5);
	put01(!0);
	putc('\n');
	return 0;
}
`
	// 1<2, 2<1, 2<=2, 3>2, 2>=3, 1==1, 1!=1, 1&&0, 1&&2, 0||0, 0||3, !5, !0
	runBoth(t, src, "", "1011010010101\n")
}

func TestShortCircuitSideEffects(t *testing.T) {
	src := `
int calls = 0;
int bump() { calls = calls + 1; return 1; }
int main() {
	int x;
	x = 0 && bump();
	x = x + calls;          // calls must still be 0
	x = 1 || bump();
	putc('0' + calls);      // still 0
	x = 1 && bump();
	putc('0' + calls);      // now 1
	x = 0 || bump();
	putc('0' + calls);      // now 2
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "012\n")
}

func TestPointersAndArrays(t *testing.T) {
	src := `
int g[10];
int main() {
	int i;
	int *p;
	for (i = 0; i < 10; i++) g[i] = i * i;
	p = g;
	putc('0' + p[3] % 10);      // 9
	p = p + 4;
	putc('0' + *p % 10);        // 16 -> 6
	p++;
	putc('0' + *p % 10);        // 25 -> 5
	putc('0' + (p - g));        // 5 elements
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "9655\n")
}

func TestCharsAndStrings(t *testing.T) {
	src := `
char *msg = "AB";
char buf[8];
int slen(char *s) {
	int n = 0;
	while (s[n]) n++;
	return n;
}
int main() {
	buf[0] = msg[0] + 1;
	buf[1] = msg[1] + 1;
	buf[2] = 0;
	putc(buf[0]);
	putc(buf[1]);
	putc('0' + slen(buf));
	putc('0' + slen("four"));
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "BC24\n")
}

func TestRecursion(t *testing.T) {
	src := `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int fact(int n) {
	if (n <= 1) return 1;
	return n * fact(n - 1);
}
int main() {
	putc('0' + fib(10) / 10 % 10); // fib(10)=55
	putc('0' + fib(10) % 10);
	putc('0' + fact(5) / 100);     // 120
	putc('0' + fact(5) / 10 % 10);
	putc('0' + fact(5) % 10);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "55120\n")
}

func TestAddressOfLocal(t *testing.T) {
	src := `
void setit(int *p, int v) { *p = v; }
int main() {
	int x = 1;
	setit(&x, 7);
	putc('0' + x);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "7\n")
}

func TestCompoundAssignAndIncDec(t *testing.T) {
	src := `
int a[4];
int main() {
	int x = 10;
	int i = 0;
	x += 5; x -= 3; x *= 2; x /= 4; x %= 5; // ((10+5-3)*2/4)%5 = 6%5 = 1
	putc('0' + x);
	x = 12;
	x &= 10; x |= 1; x ^= 2; x <<= 1; x >>= 1; // ((12&10)|1)^2 = 11, <<1 >>1 = 11... wait
	putc('A' + x % 26);
	a[i++] = 5;
	putc('0' + i);
	putc('0' + a[0]);
	a[--i] = 3;
	putc('0' + i);
	putc('0' + a[0]);
	i = 2;
	putc('0' + i++);
	putc('0' + i);
	putc('0' + ++i);
	putc('\n');
	return 0;
}
`
	// x path: 12&10=8, |1=9, ^2=11, <<1=22, >>1=11 -> 'A'+11='L'
	runBoth(t, src, "", "1L1503234\n")
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
int main() {
	int i;
	int sum = 0;
	for (i = 0; i < 10; i++) {
		if (i == 3) continue;
		if (i == 6) break;
		sum += i;
	}
	// 0+1+2+4+5 = 12
	putc('0' + sum / 10);
	putc('0' + sum % 10);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "12\n")
}

func TestGlobalInitializers(t *testing.T) {
	src := `
int seven = 7;
char letter = 'q';
int neg = -3;
int main() {
	putc('0' + seven);
	putc(letter);
	putc('0' - neg);
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "7q3\n")
}

func TestNestedLoops(t *testing.T) {
	src := `
int main() {
	int i;
	int j;
	int n = 0;
	for (i = 0; i < 4; i++) {
		for (j = 0; j < i; j++) {
			n++;
		}
	}
	putc('0' + n); // 0+1+2+3 = 6
	putc('\n');
	return 0;
}
`
	runBoth(t, src, "", "6\n")
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"undefined var", `int main() { return x; }`},
		{"undefined func", `int main() { return f(); }`},
		{"no main", `int f() { return 0; }`},
		{"dup function", `int f(){return 0;} int f(){return 0;} int main(){return 0;}`},
		{"dup global", `int g; int g; int main(){return 0;}`},
		{"dup local", `int main() { int x; int x; return 0; }`},
		{"break outside loop", `int main() { break; }`},
		{"continue outside loop", `int main() { continue; }`},
		{"void returns value", `void f() { return 1; } int main(){ f(); return 0; }`},
		{"missing return value", `int f() { return; } int main(){ return f(); }`},
		{"assign to rvalue", `int main() { 1 = 2; return 0; }`},
		{"bad arg count", `int f(int a){return a;} int main(){ return f(); }`},
		{"deref int", `int main() { int x; return *x; }`},
		{"addr of literal", `int main() { int *p; p = &3; return 0; }`},
		{"index int", `int main() { int x; return x[0]; }`},
		{"redefine builtin", `int getc(int s) { return 0; } int main(){ return 0; }`},
		{"unterminated comment", `int main() { /* oops return 0; }`},
		{"bad token", "int main() { return 0 @ 1; }"},
		{"unterminated string", `int main() { putc("a; return 0; }`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := minic.Compile("e.mc", c.src, minic.Options{}); err == nil {
				t.Errorf("Compile accepted bad program")
			}
		})
	}
}

func TestValidateAfterCompile(t *testing.T) {
	p, err := minic.Compile("h.mc", helloSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("optimized program invalid: %v", err)
	}
	if p.FuncByName("main") == nil || p.FuncByName("_start") == nil {
		t.Error("missing expected functions")
	}
}

func TestOptimizeShrinksCode(t *testing.T) {
	p0, err := minic.Compile("h.mc", helloSrc, minic.Options{})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := minic.Compile("h.mc", helloSrc, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumNodes() >= p0.NumNodes() {
		t.Errorf("optimizer did not shrink program: %d -> %d nodes", p0.NumNodes(), p1.NumNodes())
	}
}
