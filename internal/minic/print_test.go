package minic

import (
	"testing"
)

// formatSrc is a program exercising every syntactic form the printer must
// reproduce: globals (scalars, arrays, string init), pointers, all statement
// kinds, op-assignments, inc/dec, short-circuit operators, and nested
// assignment inside a condition.
const formatSrc = `
int g = -3;
int tbl[16];
char *msg = "hi";
char *p;

int twice(int x) { return x * 2; }

void fill(int n) {
	int i;
	for (i = 0; i < n; i++) tbl[i] = twice(i) + g;
}

int main() {
	int c;
	int acc = 0;
	int n = 0;
	fill(16);
	while ((c = getc(0)) >= 0) {
		if (c % 3 == 0 && c != 48) acc += tbl[c & 15];
		else if (c == '!' || c < 0) acc ^= ~c;
		else { acc -= c << 2; continue; }
		n++;
		acc *= 3;
		acc /= 2;
		acc %= 1021;
		acc |= 1;
		acc &= 4095;
		acc ^= n;
		acc <<= 1;
		acc >>= 1;
		for (;;) { break; }
		;
	}
	p = msg;
	while (*p) { putc(*p); ++p; }
	--n;
	putc('A' + (acc % 26 + 26) % 26);
	return 0;
}
`

// TestFormatRoundtrip: formatting a parsed file yields a program that parses
// and behaves identically (same compiled output on the same input).
func TestFormatRoundtrip(t *testing.T) {
	f, err := Parse("fmt.mc", formatSrc)
	if err != nil {
		t.Fatal(err)
	}
	printed := Format(f)
	f2, err := Parse("fmt2.mc", printed)
	if err != nil {
		t.Fatalf("printed source does not parse: %v\n%s", err, printed)
	}

	// Idempotence: printing the reparsed file reproduces the text exactly.
	if printed2 := Format(f2); printed2 != printed {
		t.Errorf("Format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", printed, printed2)
	}

	// Behavioral equivalence under compilation + interpretation is checked
	// in internal/difftest (which owns the interpreter dependency); here we
	// compare the compiled programs' disassembly via Compile succeeding and
	// emitting the same number of functions and blocks.
	p1, err := Compile("fmt.mc", formatSrc, Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile("fmt2.mc", printed, Options{Optimize: true})
	if err != nil {
		t.Fatalf("printed source does not compile: %v\n%s", err, printed)
	}
	if len(p1.Funcs) != len(p2.Funcs) || len(p1.Blocks) != len(p2.Blocks) {
		t.Errorf("printed program shape differs: %d/%d funcs, %d/%d blocks",
			len(p1.Funcs), len(p2.Funcs), len(p1.Blocks), len(p2.Blocks))
	}
}

// TestFormatPreservesAssignInCondition guards the precedence trap: an
// assignment nested in a comparison must keep its parentheses.
func TestFormatPreservesAssignInCondition(t *testing.T) {
	src := "int main() { int c; while ((c = getc(0)) >= 0) putc(c); return 0; }"
	f, err := Parse("a.mc", src)
	if err != nil {
		t.Fatal(err)
	}
	printed := Format(f)
	if _, err := Compile("a2.mc", printed, Options{}); err != nil {
		t.Fatalf("printed source broken: %v\n%s", err, printed)
	}
	f2, _ := Parse("a2.mc", printed)
	w, ok := f2.Funcs[0].Body.List[1].(*WhileStmt)
	if !ok {
		t.Fatalf("statement shape changed:\n%s", printed)
	}
	cmp, ok := w.Cond.(*BinExpr)
	if !ok || cmp.Op != Ge {
		t.Fatalf("condition no longer a >= comparison:\n%s", printed)
	}
	if _, ok := cmp.X.(*AssignExpr); !ok {
		t.Fatalf("assignment migrated out of the comparison's left side:\n%s", printed)
	}
}
