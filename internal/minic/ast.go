package minic

// Type describes a MiniC type. Base types are int and char; Ptr counts
// levels of indirection. Arrays appear only in declarations and decay to
// pointers in expressions.
type Type struct {
	Base BaseType
	Ptr  int // levels of indirection
}

// BaseType is a scalar base type.
type BaseType uint8

const (
	BaseInt BaseType = iota
	BaseChar
	BaseVoid
)

// Common types.
var (
	TInt     = Type{Base: BaseInt}
	TChar    = Type{Base: BaseChar}
	TVoid    = Type{Base: BaseVoid}
	TCharPtr = Type{Base: BaseChar, Ptr: 1}
)

// IsPtr reports whether the type is a pointer.
func (t Type) IsPtr() bool { return t.Ptr > 0 }

// Elem returns the pointee type. It panics on non-pointers.
func (t Type) Elem() Type {
	if t.Ptr == 0 {
		panic("minic: Elem of non-pointer")
	}
	return Type{Base: t.Base, Ptr: t.Ptr - 1}
}

// AddrOf returns a pointer to t.
func (t Type) AddrOf() Type { return Type{Base: t.Base, Ptr: t.Ptr + 1} }

// Size returns the byte size of a value of the type.
func (t Type) Size() int32 {
	if t.Ptr > 0 || t.Base == BaseInt {
		return 4
	}
	if t.Base == BaseChar {
		return 1
	}
	return 0
}

func (t Type) String() string {
	s := ""
	switch t.Base {
	case BaseInt:
		s = "int"
	case BaseChar:
		s = "char"
	case BaseVoid:
		s = "void"
	}
	for i := 0; i < t.Ptr; i++ {
		s += "*"
	}
	return s
}

// Expr is an expression node.
type Expr interface{ exprLine() int }

type (
	// IntExpr is an integer or char literal.
	IntExpr struct {
		Line int
		Val  int32
	}

	// StrExpr is a string literal; it evaluates to a char* into the data
	// segment (NUL-terminated).
	StrExpr struct {
		Line int
		Val  string
	}

	// VarExpr references a variable by name. Sym is filled by sema.
	VarExpr struct {
		Line int
		Name string
		Sym  *Symbol
	}

	// UnExpr is a unary operation: - ~ ! * (deref) & (address-of).
	UnExpr struct {
		Line int
		Op   Kind
		X    Expr
	}

	// BinExpr is a binary operation.
	BinExpr struct {
		Line int
		Op   Kind
		X, Y Expr
	}

	// AssignExpr is = or an op-assignment; Op is Assign or the compound
	// operator token (PlusEq etc.).
	AssignExpr struct {
		Line int
		Op   Kind
		LHS  Expr
		RHS  Expr
	}

	// IncDecExpr is ++ or -- in prefix or postfix position.
	IncDecExpr struct {
		Line int
		Op   Kind // Inc or Dec
		X    Expr
		Post bool
	}

	// IndexExpr is X[Idx].
	IndexExpr struct {
		Line int
		X    Expr
		Idx  Expr
	}

	// CallExpr is a function call or builtin (getc, putc).
	CallExpr struct {
		Line int
		Name string
		Args []Expr
		Fn   *FuncDecl // filled by sema; nil for builtins
	}
)

func (e *IntExpr) exprLine() int    { return e.Line }
func (e *StrExpr) exprLine() int    { return e.Line }
func (e *VarExpr) exprLine() int    { return e.Line }
func (e *UnExpr) exprLine() int     { return e.Line }
func (e *BinExpr) exprLine() int    { return e.Line }
func (e *AssignExpr) exprLine() int { return e.Line }
func (e *IncDecExpr) exprLine() int { return e.Line }
func (e *IndexExpr) exprLine() int  { return e.Line }
func (e *CallExpr) exprLine() int   { return e.Line }

// Stmt is a statement node.
type Stmt interface{ stmtLine() int }

type (
	// DeclStmt declares a local variable, optionally with an initializer.
	DeclStmt struct {
		Line   int
		Name   string
		Type   Type
		ArrLen int32 // 0 for scalars; element count for local arrays
		Init   Expr
		Sym    *Symbol
	}

	// ExprStmt evaluates an expression for its side effects.
	ExprStmt struct {
		Line int
		X    Expr
	}

	// IfStmt is if/else.
	IfStmt struct {
		Line int
		Cond Expr
		Then Stmt
		Else Stmt // may be nil
	}

	// WhileStmt is a while loop.
	WhileStmt struct {
		Line int
		Cond Expr
		Body Stmt
	}

	// ForStmt is a C for loop; Init/Cond/Post may be nil.
	ForStmt struct {
		Line int
		Init Stmt
		Cond Expr
		Post Expr
		Body Stmt
	}

	// ReturnStmt returns from the function; X may be nil for void.
	ReturnStmt struct {
		Line int
		X    Expr
	}

	// BreakStmt exits the innermost loop.
	BreakStmt struct{ Line int }

	// ContinueStmt continues the innermost loop.
	ContinueStmt struct{ Line int }

	// BlockStmt is a brace-delimited statement list with its own scope.
	BlockStmt struct {
		Line int
		List []Stmt
	}

	// EmptyStmt is a lone semicolon.
	EmptyStmt struct{ Line int }
)

func (s *DeclStmt) stmtLine() int     { return s.Line }
func (s *ExprStmt) stmtLine() int     { return s.Line }
func (s *IfStmt) stmtLine() int       { return s.Line }
func (s *WhileStmt) stmtLine() int    { return s.Line }
func (s *ForStmt) stmtLine() int      { return s.Line }
func (s *ReturnStmt) stmtLine() int   { return s.Line }
func (s *BreakStmt) stmtLine() int    { return s.Line }
func (s *ContinueStmt) stmtLine() int { return s.Line }
func (s *BlockStmt) stmtLine() int    { return s.Line }
func (s *EmptyStmt) stmtLine() int    { return s.Line }

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Line   int
	Name   string
	Ret    Type
	Params []Param
	Body   *BlockStmt

	// paramSyms maps parameter names to their resolved symbols (filled by
	// semantic analysis, consumed by the code generator's prologue).
	paramSyms map[string]*Symbol
}

// GlobalDecl is a file-scope variable.
type GlobalDecl struct {
	Line    int
	Name    string
	Type    Type
	ArrLen  int32  // 0 for scalars
	Init    int32  // scalar initializer (0 if absent)
	InitStr string // string initializer for char arrays / char* ("" if absent)
	HasInit bool
	Sym     *Symbol
}

// File is a parsed translation unit.
type File struct {
	Name    string
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// SymKind classifies a resolved symbol.
type SymKind uint8

const (
	SymGlobal SymKind = iota // data-segment scalar or array
	SymLocal                 // register-allocated local scalar
	SymFrame                 // frame-resident local (array or addressed)
	SymParam                 // incoming argument
)

// Symbol is a resolved variable created by semantic analysis.
type Symbol struct {
	Name   string
	Kind   SymKind
	Type   Type  // value type (for arrays, the element type)
	IsArr  bool  // declared as an array
	ArrLen int32 // element count when IsArr

	// Addr is the data-segment address for globals and the frame offset for
	// frame-resident locals (assigned by codegen).
	Addr int32

	// ArgIdx is the incoming argument index for symbols that started life
	// as parameters (including addressed params demoted to SymFrame);
	// -1 otherwise.
	ArgIdx int

	// VReg is the virtual register for SymLocal (and for SymParam after the
	// prologue copies the argument in). Assigned by codegen.
	VReg int16

	// Addressed is set when & is applied to the symbol (forces SymFrame).
	Addressed bool
}
