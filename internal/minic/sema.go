package minic

import "fmt"

// DataBase is the address where the data segment (globals and string
// literals) is loaded. Addresses below it act as a null-pointer guard.
const DataBase = 4096

// DefaultMemSize is the flat simulated memory size; the stack grows down
// from the top.
const DefaultMemSize = 8 << 20

// Unit is a semantically analyzed translation unit, ready for code
// generation: symbols are resolved, expression types computed, and the data
// segment laid out.
type Unit struct {
	File  *File
	Types map[Expr]Type
	Funcs map[string]*FuncDecl

	Data     []byte
	DataBase int64

	strings map[string]int32 // literal -> address (deduplicated)
}

// builtins maps builtin call names to their argument counts.
var builtins = map[string]int{
	"getc": 1,
	"putc": 1,
}

// Analyze runs semantic analysis over a parsed file.
func Analyze(f *File) (*Unit, error) {
	u := &Unit{
		File:     f,
		Types:    make(map[Expr]Type),
		Funcs:    make(map[string]*FuncDecl),
		DataBase: DataBase,
		strings:  make(map[string]int32),
	}
	c := &checker{unit: u, file: f.Name}
	if err := c.run(); err != nil {
		return nil, err
	}
	return u, nil
}

// StringAddr returns the data-segment address of a string literal, adding it
// (NUL-terminated) on first use.
func (u *Unit) StringAddr(s string) int32 {
	if a, ok := u.strings[s]; ok {
		return a
	}
	addr := int32(u.DataBase) + int32(len(u.Data))
	u.Data = append(u.Data, s...)
	u.Data = append(u.Data, 0)
	u.align(4)
	u.strings[s] = addr
	return addr
}

func (u *Unit) align(n int) {
	for len(u.Data)%n != 0 {
		u.Data = append(u.Data, 0)
	}
}

func (u *Unit) put32(off int, v int32) {
	u.Data[off] = byte(v)
	u.Data[off+1] = byte(v >> 8)
	u.Data[off+2] = byte(v >> 16)
	u.Data[off+3] = byte(v >> 24)
}

type loopCtx struct{ depth int }

type checker struct {
	unit    *Unit
	file    string
	globals map[string]*Symbol
	scopes  []map[string]*Symbol
	fn      *FuncDecl
	loop    loopCtx
}

func (c *checker) errf(line int, format string, args ...any) error {
	return &Error{File: c.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

func (c *checker) run() error {
	u := c.unit
	c.globals = make(map[string]*Symbol)

	// Pass 1: register functions (so forward calls resolve).
	for _, fn := range u.File.Funcs {
		if _, dup := u.Funcs[fn.Name]; dup {
			return c.errf(fn.Line, "duplicate function %s", fn.Name)
		}
		if builtins[fn.Name] != 0 {
			return c.errf(fn.Line, "%s is a builtin and cannot be redefined", fn.Name)
		}
		u.Funcs[fn.Name] = fn
	}
	if u.Funcs["main"] == nil {
		return c.errf(1, "no main function")
	}

	// Pass 2: lay out globals in declaration order.
	for _, g := range u.File.Globals {
		if _, dup := c.globals[g.Name]; dup {
			return c.errf(g.Line, "duplicate global %s", g.Name)
		}
		if _, isFn := u.Funcs[g.Name]; isFn {
			return c.errf(g.Line, "%s is both a global and a function", g.Name)
		}
		if err := c.layoutGlobal(g); err != nil {
			return err
		}
	}

	// Pass 3: check function bodies.
	for _, fn := range u.File.Funcs {
		if err := c.checkFunc(fn); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) layoutGlobal(g *GlobalDecl) error {
	u := c.unit
	sym := &Symbol{Name: g.Name, Kind: SymGlobal, Type: g.Type, ArgIdx: -1}
	size := g.Type.Size()
	if g.ArrLen > 0 {
		sym.IsArr = true
		sym.ArrLen = g.ArrLen
		size = g.Type.Size() * g.ArrLen
	}
	u.align(4)
	off := len(u.Data)
	sym.Addr = int32(u.DataBase) + int32(off)
	u.Data = append(u.Data, make([]byte, size)...)
	u.align(4)

	if g.HasInit && g.InitStr == "" {
		if sym.IsArr {
			return c.errf(g.Line, "array %s cannot have a scalar initializer", g.Name)
		}
		if g.Type.Size() == 4 {
			u.put32(off, g.Init)
		} else {
			u.Data[off] = byte(g.Init)
		}
	}
	if g.InitStr != "" {
		if !(g.Type == TCharPtr) {
			return c.errf(g.Line, "string initializer requires char*, %s has type %s", g.Name, g.Type)
		}
		addr := u.StringAddr(g.InitStr)
		u.put32(off, addr)
	}
	g.Sym = sym
	c.globals[g.Name] = sym
	return nil
}

func (c *checker) pushScope() { c.scopes = append(c.scopes, map[string]*Symbol{}) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(line int, sym *Symbol) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		return c.errf(line, "duplicate declaration of %s", sym.Name)
	}
	top[sym.Name] = sym
	return nil
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return c.globals[name]
}

func (c *checker) checkFunc(fn *FuncDecl) error {
	c.fn = fn
	c.loop = loopCtx{}
	c.scopes = nil
	c.pushScope()
	defer c.popScope()
	fn.paramSyms = make(map[string]*Symbol, len(fn.Params))
	for i, p := range fn.Params {
		sym := &Symbol{Name: p.Name, Kind: SymParam, Type: p.Type, ArgIdx: i}
		if err := c.declare(fn.Line, sym); err != nil {
			return err
		}
		fn.paramSyms[p.Name] = sym
	}
	return c.checkStmt(fn.Body)
}

func (c *checker) checkStmt(s Stmt) error {
	switch s := s.(type) {
	case *DeclStmt:
		if s.Init != nil {
			if _, err := c.checkExpr(s.Init); err != nil {
				return err
			}
		}
		sym := &Symbol{Name: s.Name, Type: s.Type, ArgIdx: -1}
		if s.ArrLen > 0 {
			sym.Kind = SymFrame
			sym.IsArr = true
			sym.ArrLen = s.ArrLen
		} else {
			sym.Kind = SymLocal
		}
		s.Sym = sym
		return c.declare(s.Line, sym)

	case *ExprStmt:
		_, err := c.checkExpr(s.X)
		return err

	case *IfStmt:
		if _, err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		if err := c.checkSubStmt(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return c.checkSubStmt(s.Else)
		}
		return nil

	case *WhileStmt:
		if _, err := c.checkExpr(s.Cond); err != nil {
			return err
		}
		c.loop.depth++
		err := c.checkSubStmt(s.Body)
		c.loop.depth--
		return err

	case *ForStmt:
		c.pushScope() // for-scope holds the init declaration
		defer c.popScope()
		if s.Init != nil {
			if err := c.checkStmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if _, err := c.checkExpr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if _, err := c.checkExpr(s.Post); err != nil {
				return err
			}
		}
		c.loop.depth++
		err := c.checkSubStmt(s.Body)
		c.loop.depth--
		return err

	case *ReturnStmt:
		if s.X == nil {
			if c.fn.Ret != TVoid {
				return c.errf(s.Line, "%s must return a value", c.fn.Name)
			}
			return nil
		}
		if c.fn.Ret == TVoid {
			return c.errf(s.Line, "void function %s returns a value", c.fn.Name)
		}
		_, err := c.checkExpr(s.X)
		return err

	case *BreakStmt:
		if c.loop.depth == 0 {
			return c.errf(s.Line, "break outside loop")
		}
		return nil

	case *ContinueStmt:
		if c.loop.depth == 0 {
			return c.errf(s.Line, "continue outside loop")
		}
		return nil

	case *BlockStmt:
		c.pushScope()
		defer c.popScope()
		for _, sub := range s.List {
			if err := c.checkStmt(sub); err != nil {
				return err
			}
		}
		return nil

	case *EmptyStmt:
		return nil
	}
	return fmt.Errorf("minic: unknown statement %T", s)
}

// checkSubStmt checks a statement that introduces its own scope when it is
// not already a block (so `if (c) int x = ...;` scopes x correctly).
func (c *checker) checkSubStmt(s Stmt) error {
	if _, isBlock := s.(*BlockStmt); isBlock {
		return c.checkStmt(s)
	}
	c.pushScope()
	defer c.popScope()
	return c.checkStmt(s)
}

// isLvalue reports whether e denotes a storage location.
func isLvalue(e Expr) bool {
	switch e := e.(type) {
	case *VarExpr:
		return e.Sym != nil && !e.Sym.IsArr
	case *IndexExpr:
		return true
	case *UnExpr:
		return e.Op == Star
	}
	return false
}

func (c *checker) checkExpr(e Expr) (Type, error) {
	t, err := c.typeExpr(e)
	if err != nil {
		return t, err
	}
	c.unit.Types[e] = t
	return t, nil
}

func (c *checker) typeExpr(e Expr) (Type, error) {
	switch e := e.(type) {
	case *IntExpr:
		return TInt, nil

	case *StrExpr:
		c.unit.StringAddr(e.Val) // intern now so layout is deterministic
		return TCharPtr, nil

	case *VarExpr:
		sym := c.lookup(e.Name)
		if sym == nil {
			return TInt, c.errf(e.Line, "undefined variable %s", e.Name)
		}
		e.Sym = sym
		if sym.IsArr {
			return sym.Type.AddrOf(), nil // array decays to pointer
		}
		return sym.Type, nil

	case *UnExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return TInt, err
		}
		switch e.Op {
		case Minus, Tilde:
			return TInt, nil
		case Bang:
			return TInt, nil
		case Star:
			if !xt.IsPtr() {
				return TInt, c.errf(e.Line, "cannot dereference %s", xt)
			}
			return xt.Elem(), nil
		case Amp:
			if !isLvalue(e.X) {
				return TInt, c.errf(e.Line, "cannot take address of this expression")
			}
			if v, ok := e.X.(*VarExpr); ok {
				v.Sym.Addressed = true
				if v.Sym.Kind == SymLocal || v.Sym.Kind == SymParam {
					v.Sym.Kind = SymFrame
				}
			}
			return xt.AddrOf(), nil
		}
		return TInt, c.errf(e.Line, "bad unary operator %s", e.Op)

	case *BinExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return TInt, err
		}
		yt, err := c.checkExpr(e.Y)
		if err != nil {
			return TInt, err
		}
		switch e.Op {
		case Plus:
			if xt.IsPtr() && yt.IsPtr() {
				return TInt, c.errf(e.Line, "cannot add two pointers")
			}
			if xt.IsPtr() {
				return xt, nil
			}
			if yt.IsPtr() {
				return yt, nil
			}
			return TInt, nil
		case Minus:
			if xt.IsPtr() && yt.IsPtr() {
				return TInt, nil // element-count difference
			}
			if xt.IsPtr() {
				return xt, nil
			}
			if yt.IsPtr() {
				return TInt, c.errf(e.Line, "cannot subtract pointer from integer")
			}
			return TInt, nil
		default:
			return TInt, nil
		}

	case *AssignExpr:
		// Resolve the LHS first: isLvalue needs VarExpr symbols filled in,
		// and "undefined variable" should win over "not an lvalue".
		lt, err := c.checkExpr(e.LHS)
		if err != nil {
			return TInt, err
		}
		if !isLvalue(e.LHS) {
			return TInt, c.errf(e.Line, "left side of assignment is not an lvalue")
		}
		if _, err := c.checkExpr(e.RHS); err != nil {
			return TInt, err
		}
		return lt, nil

	case *IncDecExpr:
		t, err := c.checkExpr(e.X)
		if err != nil {
			return TInt, err
		}
		if !isLvalue(e.X) {
			return TInt, c.errf(e.Line, "%s requires an lvalue", e.Op)
		}
		return t, nil

	case *IndexExpr:
		xt, err := c.checkExpr(e.X)
		if err != nil {
			return TInt, err
		}
		if _, err := c.checkExpr(e.Idx); err != nil {
			return TInt, err
		}
		if !xt.IsPtr() {
			return TInt, c.errf(e.Line, "indexing requires a pointer or array, got %s", xt)
		}
		return xt.Elem(), nil

	case *CallExpr:
		for _, a := range e.Args {
			if _, err := c.checkExpr(a); err != nil {
				return TInt, err
			}
		}
		if nargs, ok := builtins[e.Name]; ok {
			if len(e.Args) != nargs {
				return TInt, c.errf(e.Line, "%s takes %d argument(s), got %d", e.Name, nargs, len(e.Args))
			}
			return TInt, nil
		}
		fn := c.unit.Funcs[e.Name]
		if fn == nil {
			return TInt, c.errf(e.Line, "call to undefined function %s", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return TInt, c.errf(e.Line, "%s takes %d argument(s), got %d", e.Name, len(fn.Params), len(e.Args))
		}
		e.Fn = fn
		return fn.Ret, nil
	}
	return TInt, fmt.Errorf("minic: unknown expression %T", e)
}
