package minic

import (
	"strings"
	"testing"
)

func analyzeSrc(t *testing.T, src string) (*Unit, error) {
	t.Helper()
	f, err := Parse("s.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(f)
}

func TestSemaRejects(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"array scalar init", `int a[4] = 3; int main(){return 0;}`, "initializer"},
		{"string init non-charptr", `int *p = "x"; int main(){return 0;}`, "char*"},
		{"void variable", `void v; int main(){return 0;}`, "void"},
		{"global shadows function", `int f(){return 0;} int f; int main(){return 0;}`, "both"},
		{"getc arity", `int main(){ return getc(0, 1); }`, "argument"},
		{"putc arity", `int main(){ putc(); return 0; }`, "argument"},
		{"add two pointers", `int main(){ int *p; int *q; return p + q; }`, "pointer"},
		{"int minus pointer", `int main(){ int *p; return 3 - p; }`, "subtract"},
		{"deref non-pointer", `int main(){ int x; return *x; }`, "dereference"},
		{"index non-pointer", `int main(){ int x; return x[1]; }`, "pointer"},
		{"addr of constant", `int main(){ int *p = &1; return 0; }`, "address"},
		{"incdec rvalue", `int main(){ return (1+2)++; }`, "lvalue"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// Rejection may come from the parser or from sema.
			f, err := Parse("s.mc", c.src)
			if err == nil {
				_, err = Analyze(f)
			}
			if err == nil {
				t.Fatalf("front end accepted %q", c.src)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q should mention %q", err, c.wantErr)
			}
		})
	}
}

func TestSemaDataLayout(t *testing.T) {
	u, err := analyzeSrc(t, `
int a = 7;
char c = 'x';
int arr[3];
char *s = "hey";
int main() { return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	// a at DataBase, c word-aligned after, arr after, s last.
	if u.DataBase != DataBase {
		t.Errorf("DataBase = %d", u.DataBase)
	}
	// a == 7 at offset 0.
	if got := int32(u.Data[0]) | int32(u.Data[1])<<8; got != 7 {
		t.Errorf("global a = %d, want 7", got)
	}
	// c == 'x' at offset 4.
	if u.Data[4] != 'x' {
		t.Errorf("global c = %q, want x", u.Data[4])
	}
	// The string "hey" with NUL appears somewhere in the image.
	if !strings.Contains(string(u.Data), "hey\x00") {
		t.Error("string literal missing from data segment")
	}
}

func TestStringInterning(t *testing.T) {
	u, err := analyzeSrc(t, `
char *a = "same";
char *b = "same";
int main() { putc(*"same"); return 0; }
`)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(u.Data), "same\x00"); n != 1 {
		t.Errorf("string interned %d times, want 1", n)
	}
	addr := u.StringAddr("same")
	if u.StringAddr("same") != addr {
		t.Error("StringAddr not stable")
	}
}

func TestAddressedLocalDemotedToFrame(t *testing.T) {
	f, err := Parse("s.mc", `
int main() {
	int x = 1;
	int *p = &x;
	return *p;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	decl := f.Funcs[0].Body.List[0].(*DeclStmt)
	if decl.Sym.Kind != SymFrame {
		t.Errorf("addressed local has kind %v, want SymFrame", decl.Sym.Kind)
	}
	if !decl.Sym.Addressed {
		t.Error("Addressed flag not set")
	}
}

func TestAddressedParamDemoted(t *testing.T) {
	f, err := Parse("s.mc", `
void setz(int *p) { *p = 0; }
int g(int a) { setz(&a); return a; }
int main() { return g(5); }
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(f); err != nil {
		t.Fatal(err)
	}
	var gFn *FuncDecl
	for _, fn := range f.Funcs {
		if fn.Name == "g" {
			gFn = fn
		}
	}
	sym := gFn.paramSyms["a"]
	if sym.Kind != SymFrame {
		t.Errorf("addressed param kind %v, want SymFrame", sym.Kind)
	}
	if sym.ArgIdx != 0 {
		t.Errorf("ArgIdx = %d, want 0", sym.ArgIdx)
	}
}

func TestPointerTypesThroughExpressions(t *testing.T) {
	f, err := Parse("s.mc", `
int arr[4];
int main() {
	int *p = arr + 1;
	int d = (arr + 3) - p;
	return d + p[0];
}
`)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Analyze(f)
	if err != nil {
		t.Fatal(err)
	}
	// Spot check: arr decays to int*.
	decl := f.Funcs[0].Body.List[0].(*DeclStmt)
	bin := decl.Init.(*BinExpr)
	if got := u.Types[bin]; got.String() != "int*" {
		t.Errorf("arr+1 type %s, want int*", got)
	}
}
