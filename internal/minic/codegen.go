package minic

import (
	"fmt"

	"fgpsim/internal/ir"
)

// frameSentinel is the placeholder magnitude used in prologue/epilogue
// stack-pointer adjustments until the final frame size is known (spill slots
// are added by the register allocator). patchFrames replaces it.
const frameSentinel = int64(1) << 40

// firstVReg is the first virtual register number. Registers below it are
// architectural; the code generator only uses ir.RegSP and ir.RegRet from
// that range, and the register allocator assigns the rest.
const firstVReg = ir.Reg(ir.NumRegs)

// cg generates node IR for one function.
type cg struct {
	unit *Unit
	prog *ir.Program
	fids map[string]ir.FuncID

	fn  *ir.Func
	fd  *FuncDecl
	cur *ir.Block // block being filled; nil when the point is unreachable

	nextV    ir.Reg
	frameOff int32

	breakTo []ir.BlockID
	contTo  []ir.BlockID

	// err holds the first internal inconsistency hit during generation.
	// Generation continues emitting placeholder code so fail sites need no
	// unwinding; generate() checks err once per function.
	err error
}

// fail records an internal code-generator error (the first one wins).
func (g *cg) fail(format string, args ...any) {
	if g.err == nil {
		g.err = fmt.Errorf("minic: internal error in %s: %s", g.fd.Name, fmt.Sprintf(format, args...))
	}
}

func (g *cg) newVReg() ir.Reg {
	v := g.nextV
	g.nextV++
	if g.nextV <= 0 {
		g.nextV = firstVReg // keep emitting valid registers; err aborts anyway
		g.fail("virtual register space exhausted")
	}
	return v
}

func (g *cg) newBlock() *ir.Block {
	b := &ir.Block{Fall: ir.NoBlock}
	g.prog.AddBlock(g.fn.ID, b)
	return b
}

// emit appends a node to the current block, materializing an unreachable
// block if control cannot reach this point (it is pruned later).
func (g *cg) emit(n ir.Node) {
	if g.cur == nil {
		g.cur = g.newBlock()
	}
	g.cur.Body = append(g.cur.Body, n)
}

// setTerm ends the current block.
func (g *cg) setTerm(term ir.Node, fall ir.BlockID) {
	if g.cur == nil {
		g.cur = g.newBlock()
	}
	g.cur.Term = term
	g.cur.Fall = fall
	g.cur = nil
}

// jump ends the current block with a jump to target and leaves the point
// unreachable.
func (g *cg) jump(target ir.BlockID) {
	g.setTerm(ir.Node{Op: ir.Jmp, Target: target}, ir.NoBlock)
}

// enter makes b the current block (b must be un-terminated).
func (g *cg) enter(b *ir.Block) { g.cur = b }

func (g *cg) constReg(v int32) ir.Reg {
	r := g.newVReg()
	g.emit(ir.Node{Op: ir.Const, Dst: r, Imm: int64(v)})
	return r
}

func (g *cg) typeOf(e Expr) Type {
	if t, ok := g.unit.Types[e]; ok {
		return t
	}
	return TInt
}

// widthOps returns the load/store opcodes for a value of type t.
func widthOps(t Type) (ld, st ir.Op) {
	if t.Size() == 1 {
		return ir.LdB, ir.StB
	}
	return ir.Ld, ir.St
}

// lvalue describes a generated storage location: either a register-resident
// local (reg set) or a memory address (base+off with a value type).
type lvalue struct {
	reg  ir.Reg // valid when kind == lvReg
	base ir.Reg
	off  int32
	typ  Type
	kind lvKind
}

type lvKind uint8

const (
	lvReg lvKind = iota
	lvMem
)

// genAddr generates the storage location of an lvalue expression.
func (g *cg) genAddr(e Expr) lvalue {
	switch e := e.(type) {
	case *VarExpr:
		sym := e.Sym
		switch sym.Kind {
		case SymLocal, SymParam:
			if sym.VReg == 0 {
				g.fail("local %s has no vreg", sym.Name)
				return lvalue{kind: lvReg, reg: g.newVReg(), typ: sym.Type}
			}
			return lvalue{kind: lvReg, reg: ir.Reg(sym.VReg), typ: sym.Type}
		case SymFrame:
			return lvalue{kind: lvMem, base: ir.RegSP, off: sym.Addr, typ: sym.Type}
		case SymGlobal:
			base := g.constReg(sym.Addr)
			return lvalue{kind: lvMem, base: base, off: 0, typ: sym.Type}
		}

	case *IndexExpr:
		elem := g.typeOf(e)
		base := g.genExpr(e.X)
		idx := g.genExpr(e.Idx)
		addr := g.newVReg()
		if elem.Size() == 4 {
			two := g.constReg(2)
			scaled := g.newVReg()
			g.emit(ir.Node{Op: ir.Shl, Dst: scaled, A: idx, B: two})
			idx = scaled
		}
		g.emit(ir.Node{Op: ir.Add, Dst: addr, A: base, B: idx})
		return lvalue{kind: lvMem, base: addr, off: 0, typ: elem}

	case *UnExpr:
		if e.Op == Star {
			base := g.genExpr(e.X)
			return lvalue{kind: lvMem, base: base, off: 0, typ: g.typeOf(e)}
		}
	}
	g.fail("genAddr on non-lvalue %T", e)
	return lvalue{kind: lvReg, reg: g.newVReg(), typ: TInt}
}

// loadLV produces the value of a storage location in a register.
func (g *cg) loadLV(lv lvalue) ir.Reg {
	if lv.kind == lvReg {
		return lv.reg
	}
	ld, _ := widthOps(lv.typ)
	dst := g.newVReg()
	g.emit(ir.Node{Op: ld, Dst: dst, A: lv.base, Imm: int64(lv.off)})
	return dst
}

// storeLV writes a register value to a storage location.
func (g *cg) storeLV(lv lvalue, v ir.Reg) {
	if lv.kind == lvReg {
		if lv.reg != v {
			g.emit(ir.Node{Op: ir.Mov, Dst: lv.reg, A: v})
		}
		return
	}
	_, st := widthOps(lv.typ)
	g.emit(ir.Node{Op: st, A: lv.base, B: v, Imm: int64(lv.off)})
}

var binOpTab = map[Kind]ir.Op{
	Plus: ir.Add, Minus: ir.Sub, Star: ir.Mul, Slash: ir.Div, Percent: ir.Rem,
	Amp: ir.And, Pipe: ir.Or, Caret: ir.Xor, Shl: ir.Shl, Shr: ir.Shr,
	EqEq: ir.Eq, NotEq: ir.Ne, Lt: ir.Lt, Le: ir.Le, Gt: ir.Gt, Ge: ir.Ge,
}

var compoundTab = map[Kind]Kind{
	PlusEq: Plus, MinusEq: Minus, StarEq: Star, SlashEq: Slash,
	PercentEq: Percent, AmpEq: Amp, PipeEq: Pipe, CaretEq: Caret,
	ShlEq: Shl, ShrEq: Shr,
}

// scalePtr multiplies v by the pointee size of pt when pt is a pointer to a
// word-sized element; byte pointers need no scaling.
func (g *cg) scalePtr(pt Type, v ir.Reg) ir.Reg {
	if !pt.IsPtr() || pt.Elem().Size() == 1 {
		return v
	}
	two := g.constReg(2)
	scaled := g.newVReg()
	g.emit(ir.Node{Op: ir.Shl, Dst: scaled, A: v, B: two})
	return scaled
}

// genBinValue generates X op Y with pointer scaling.
func (g *cg) genBinValue(op Kind, xt, yt Type, x, y ir.Reg) ir.Reg {
	dst := g.newVReg()
	switch {
	case op == Plus && xt.IsPtr():
		y = g.scalePtr(xt, y)
	case op == Plus && yt.IsPtr():
		x = g.scalePtr(yt, x)
	case op == Minus && xt.IsPtr() && !yt.IsPtr():
		y = g.scalePtr(xt, y)
	}
	g.emit(ir.Node{Op: binOpTab[op], Dst: dst, A: x, B: y})
	if op == Minus && xt.IsPtr() && yt.IsPtr() && xt.Elem().Size() == 4 {
		// Pointer difference in elements: divide the byte delta by 4.
		two := g.constReg(2)
		q := g.newVReg()
		g.emit(ir.Node{Op: ir.Shr, Dst: q, A: dst, B: two})
		return q
	}
	return dst
}

// genExpr generates code computing e and returns the register holding it.
func (g *cg) genExpr(e Expr) ir.Reg {
	switch e := e.(type) {
	case *IntExpr:
		return g.constReg(e.Val)

	case *StrExpr:
		return g.constReg(g.unit.StringAddr(e.Val))

	case *VarExpr:
		if e.Sym.IsArr {
			// Array decays to its address.
			if e.Sym.Kind == SymGlobal {
				return g.constReg(e.Sym.Addr)
			}
			dst := g.newVReg()
			g.emit(ir.Node{Op: ir.AddI, Dst: dst, A: ir.RegSP, Imm: int64(e.Sym.Addr)})
			return dst
		}
		return g.loadLV(g.genAddr(e))

	case *UnExpr:
		switch e.Op {
		case Minus:
			x := g.genExpr(e.X)
			dst := g.newVReg()
			g.emit(ir.Node{Op: ir.Neg, Dst: dst, A: x})
			return dst
		case Tilde:
			x := g.genExpr(e.X)
			dst := g.newVReg()
			g.emit(ir.Node{Op: ir.Not, Dst: dst, A: x})
			return dst
		case Bang:
			x := g.genExpr(e.X)
			z := g.constReg(0)
			dst := g.newVReg()
			g.emit(ir.Node{Op: ir.Eq, Dst: dst, A: x, B: z})
			return dst
		case Star:
			return g.loadLV(g.genAddr(e))
		case Amp:
			lv := g.genAddr(e.X)
			if lv.kind == lvReg {
				g.fail("address of register local (sema should have demoted it)")
				return lv.reg
			}
			if lv.off == 0 {
				return lv.base
			}
			dst := g.newVReg()
			g.emit(ir.Node{Op: ir.AddI, Dst: dst, A: lv.base, Imm: int64(lv.off)})
			return dst
		}

	case *BinExpr:
		if e.Op == AndAnd || e.Op == OrOr {
			return g.genShortCircuitValue(e)
		}
		x := g.genExpr(e.X)
		y := g.genExpr(e.Y)
		return g.genBinValue(e.Op, g.typeOf(e.X), g.typeOf(e.Y), x, y)

	case *AssignExpr:
		lv := g.genAddr(e.LHS)
		var v ir.Reg
		if e.Op == Assign {
			v = g.genExpr(e.RHS)
		} else {
			old := g.loadLV(lv)
			rhs := g.genExpr(e.RHS)
			v = g.genBinValue(compoundTab[e.Op], g.typeOf(e.LHS), g.typeOf(e.RHS), old, rhs)
		}
		g.storeLV(lv, v)
		return v

	case *IncDecExpr:
		lv := g.genAddr(e.X)
		old := g.loadLV(lv)
		t := g.typeOf(e.X)
		step := int32(1)
		if t.IsPtr() && t.Elem().Size() == 4 {
			step = 4
		}
		if e.Op == Dec {
			step = -step
		}
		nv := g.newVReg()
		g.emit(ir.Node{Op: ir.AddI, Dst: nv, A: old, Imm: int64(step)})
		if e.Post && lv.kind == lvReg {
			// The "old" value is the register itself, which the store below
			// would overwrite; preserve it first.
			keep := g.newVReg()
			g.emit(ir.Node{Op: ir.Mov, Dst: keep, A: old})
			old = keep
		}
		g.storeLV(lv, nv)
		if e.Post {
			return old
		}
		if lv.kind == lvReg {
			return lv.reg
		}
		return nv

	case *IndexExpr:
		return g.loadLV(g.genAddr(e))

	case *CallExpr:
		return g.genCall(e)
	}
	g.fail("genExpr on %T", e)
	return g.newVReg()
}

// genShortCircuitValue materializes && or || as a 0/1 value using control
// flow, matching the branchy code real compilers of the era produced.
func (g *cg) genShortCircuitValue(e *BinExpr) ir.Reg {
	dst := g.newVReg()
	tBlk := g.newBlock()
	fBlk := g.newBlock()
	join := g.newBlock()
	g.genCond(e, tBlk.ID, fBlk.ID)
	g.enter(tBlk)
	g.emit(ir.Node{Op: ir.Const, Dst: dst, Imm: 1})
	g.jump(join.ID)
	g.enter(fBlk)
	g.emit(ir.Node{Op: ir.Const, Dst: dst, Imm: 0})
	g.jump(join.ID)
	g.enter(join)
	return dst
}

// genCond generates control flow: evaluate e and branch to tBlk when
// nonzero, fBlk when zero.
func (g *cg) genCond(e Expr, tBlk, fBlk ir.BlockID) {
	switch e := e.(type) {
	case *BinExpr:
		switch e.Op {
		case AndAnd:
			mid := g.newBlock()
			g.genCond(e.X, mid.ID, fBlk)
			g.enter(mid)
			g.genCond(e.Y, tBlk, fBlk)
			return
		case OrOr:
			mid := g.newBlock()
			g.genCond(e.X, tBlk, mid.ID)
			g.enter(mid)
			g.genCond(e.Y, tBlk, fBlk)
			return
		}
	case *UnExpr:
		if e.Op == Bang {
			g.genCond(e.X, fBlk, tBlk)
			return
		}
	case *IntExpr:
		if e.Val != 0 {
			g.jump(tBlk)
		} else {
			g.jump(fBlk)
		}
		return
	}
	cond := g.genExpr(e)
	g.setTerm(ir.Node{Op: ir.Br, A: cond, Target: tBlk}, fBlk)
}

// genCall generates a function or builtin call and returns the result
// register (a fresh vreg holding garbage for void calls, which sema ensures
// is never read).
func (g *cg) genCall(e *CallExpr) ir.Reg {
	if _, ok := builtins[e.Name]; ok {
		arg := g.genExpr(e.Args[0])
		dst := g.newVReg()
		var sysno int64
		switch e.Name {
		case "getc":
			sysno = ir.SysGetc
		case "putc":
			sysno = ir.SysPutc
		}
		g.emit(ir.Node{Op: ir.Sys, Dst: dst, A: arg, B: ir.NoReg, Imm: sysno})
		return dst
	}

	// Evaluate arguments, then store them into the outgoing argument area
	// just below the stack pointer, adjust sp, and call.
	args := make([]ir.Reg, len(e.Args))
	for i, a := range e.Args {
		args[i] = g.genExpr(a)
	}
	argBytes := int32(4 * len(args))
	for i, r := range args {
		g.emit(ir.Node{Op: ir.St, A: ir.RegSP, B: r, Imm: int64(4*int32(i) - argBytes)})
	}
	if argBytes > 0 {
		g.emit(ir.Node{Op: ir.AddI, Dst: ir.RegSP, A: ir.RegSP, Imm: int64(-argBytes)})
	}
	cont := g.newBlock()
	g.setTerm(ir.Node{Op: ir.Call, Callee: g.fids[e.Name]}, cont.ID)
	g.enter(cont)
	if argBytes > 0 {
		g.emit(ir.Node{Op: ir.AddI, Dst: ir.RegSP, A: ir.RegSP, Imm: int64(argBytes)})
	}
	dst := g.newVReg()
	g.emit(ir.Node{Op: ir.Mov, Dst: dst, A: ir.RegRet})
	return dst
}

func (g *cg) genStmt(s Stmt) {
	switch s := s.(type) {
	case *DeclStmt:
		sym := s.Sym
		switch sym.Kind {
		case SymLocal:
			sym.VReg = int16(g.newVReg())
			if s.Init != nil {
				v := g.genExpr(s.Init)
				g.emit(ir.Node{Op: ir.Mov, Dst: ir.Reg(sym.VReg), A: v})
			}
		case SymFrame:
			size := sym.Type.Size()
			if sym.IsArr {
				size *= sym.ArrLen
			}
			sym.Addr = g.allocFrame(size)
			if s.Init != nil {
				v := g.genExpr(s.Init)
				g.storeLV(lvalue{kind: lvMem, base: ir.RegSP, off: sym.Addr, typ: sym.Type}, v)
			}
		}

	case *ExprStmt:
		g.genExpr(s.X)

	case *IfStmt:
		tBlk := g.newBlock()
		join := g.newBlock()
		fTarget := join.ID
		var fBlk *ir.Block
		if s.Else != nil {
			fBlk = g.newBlock()
			fTarget = fBlk.ID
		}
		g.genCond(s.Cond, tBlk.ID, fTarget)
		g.enter(tBlk)
		g.genStmt(s.Then)
		g.jump(join.ID)
		if s.Else != nil {
			g.enter(fBlk)
			g.genStmt(s.Else)
			g.jump(join.ID)
		}
		g.enter(join)

	case *WhileStmt:
		head := g.newBlock()
		body := g.newBlock()
		exit := g.newBlock()
		g.jump(head.ID)
		g.enter(head)
		g.genCond(s.Cond, body.ID, exit.ID)
		g.breakTo = append(g.breakTo, exit.ID)
		g.contTo = append(g.contTo, head.ID)
		g.enter(body)
		g.genStmt(s.Body)
		g.jump(head.ID)
		g.breakTo = g.breakTo[:len(g.breakTo)-1]
		g.contTo = g.contTo[:len(g.contTo)-1]
		g.enter(exit)

	case *ForStmt:
		if s.Init != nil {
			g.genStmt(s.Init)
		}
		head := g.newBlock()
		body := g.newBlock()
		post := g.newBlock()
		exit := g.newBlock()
		g.jump(head.ID)
		g.enter(head)
		if s.Cond != nil {
			g.genCond(s.Cond, body.ID, exit.ID)
		} else {
			g.jump(body.ID)
		}
		g.breakTo = append(g.breakTo, exit.ID)
		g.contTo = append(g.contTo, post.ID)
		g.enter(body)
		g.genStmt(s.Body)
		g.jump(post.ID)
		g.breakTo = g.breakTo[:len(g.breakTo)-1]
		g.contTo = g.contTo[:len(g.contTo)-1]
		g.enter(post)
		if s.Post != nil {
			g.genExpr(s.Post)
		}
		g.jump(head.ID)
		g.enter(exit)

	case *ReturnStmt:
		if s.X != nil {
			v := g.genExpr(s.X)
			g.emit(ir.Node{Op: ir.Mov, Dst: ir.RegRet, A: v})
		}
		g.emitEpilogue()
		g.setTerm(ir.Node{Op: ir.Ret}, ir.NoBlock)

	case *BreakStmt:
		g.jump(g.breakTo[len(g.breakTo)-1])

	case *ContinueStmt:
		g.jump(g.contTo[len(g.contTo)-1])

	case *BlockStmt:
		for _, sub := range s.List {
			g.genStmt(sub)
		}

	case *EmptyStmt:
		// nothing
	}
}

func (g *cg) allocFrame(size int32) int32 {
	size = (size + 3) &^ 3
	off := g.frameOff
	g.frameOff += size
	return off
}

func (g *cg) emitPrologue() {
	// Allocate the frame first, then copy incoming arguments into their
	// homes. On entry argument i sits at [sp+4i]; after the adjustment it
	// is at [sp + frameSize + 4i], expressed with the frame sentinel and
	// patched once the final frame size is known. Doing the adjustment
	// first means every later frame access — including spill stores the
	// register allocator inserts — uses stable non-sentinel offsets.
	g.emit(ir.Node{Op: ir.AddI, Dst: ir.RegSP, A: ir.RegSP, Imm: -frameSentinel})
	for _, p := range g.fd.Params {
		sym := g.fd.paramSyms[p.Name]
		argImm := frameSentinel + int64(4*sym.ArgIdx)
		switch sym.Kind {
		case SymParam, SymLocal:
			sym.VReg = int16(g.newVReg())
			g.emit(ir.Node{Op: ir.Ld, Dst: ir.Reg(sym.VReg), A: ir.RegSP, Imm: argImm})
		case SymFrame:
			tmp := g.newVReg()
			g.emit(ir.Node{Op: ir.Ld, Dst: tmp, A: ir.RegSP, Imm: argImm})
			sym.Addr = g.allocFrame(sym.Type.Size())
			g.storeLV(lvalue{kind: lvMem, base: ir.RegSP, off: sym.Addr, typ: sym.Type}, tmp)
		}
	}
}

func (g *cg) emitEpilogue() {
	g.emit(ir.Node{Op: ir.AddI, Dst: ir.RegSP, A: ir.RegSP, Imm: frameSentinel})
}
