package minic_test

import (
	"bytes"
	"testing"

	"fgpsim/internal/bench"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/minic"
)

// TestCompiledProgramSurvivesAssemblyRoundTrip disassembles a compiled
// program (optimized, with pruned-block holes and data) to text, assembles
// it back, and verifies the two programs compute identically.
func TestCompiledProgramSurvivesAssemblyRoundTrip(t *testing.T) {
	src := `
char *greet = "ok:";
int tally[16];
int bump(int i) { tally[i & 15] += i; return tally[i & 15]; }
int main() {
	int c = getc(0);
	int acc = 0;
	int i = 0;
	while (c >= 0) {
		acc = acc ^ bump(c + i);
		i++;
		c = getc(0);
	}
	putc(greet[0]);
	putc(greet[1]);
	putc(greet[2]);
	putc('0' + (acc % 10 + 10) % 10);
	putc('\n');
	return 0;
}
`
	p, err := minic.Compile("rt.mc", src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("round trip me, please!")
	ref, err := interp.Run(p, input, nil, interp.Options{MaxNodes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}

	text := ir.Disassemble(p)
	p2, err := ir.Assemble(text)
	if err != nil {
		t.Fatalf("assemble dump: %v", err)
	}
	got, err := interp.Run(p2, input, nil, interp.Options{MaxNodes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Output, ref.Output) {
		t.Fatalf("round-tripped program output %q, want %q", got.Output, ref.Output)
	}
	if got.RetiredNodes != ref.RetiredNodes {
		t.Errorf("retired nodes changed: %d -> %d", ref.RetiredNodes, got.RetiredNodes)
	}
	// Stability: a second round trip is textually identical.
	if text2 := ir.Disassemble(p2); text2 != text {
		t.Error("second disassembly differs from the first")
	}
}

// TestBenchmarkDumpsAssemble round-trips all five benchmark programs
// through the assembly format and checks output equivalence.
func TestBenchmarkDumpsAssemble(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			p, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			in0, in1 := b.Inputs(2)
			ref, err := interp.Run(p, in0, in1, interp.Options{MaxNodes: 1 << 25})
			if err != nil {
				t.Fatal(err)
			}
			p2, err := ir.Assemble(ir.Disassemble(p))
			if err != nil {
				t.Fatalf("assemble dump of %s: %v", b.Name, err)
			}
			got, err := interp.Run(p2, in0, in1, interp.Options{MaxNodes: 1 << 25})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Output, ref.Output) {
				t.Fatalf("%s: round-tripped program output differs", b.Name)
			}
		})
	}
}
