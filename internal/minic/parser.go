package minic

import "fmt"

// parser is a recursive-descent parser with precedence climbing for binary
// expressions.
type parser struct {
	file string
	toks []Token
	pos  int
}

// Parse parses a MiniC translation unit.
func Parse(file, src string) (*File, error) {
	toks, err := lexAll(file, src)
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	return p.parseFile()
}

func (p *parser) cur() Token { return p.toks[p.pos] }
func (p *parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() Token {
	t := p.toks[p.pos]
	if p.pos+1 < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{File: p.file, Line: p.cur().Line, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k Kind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, p.errf("expected %s, found %s", k, p.cur())
	}
	return p.advance(), nil
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.advance()
		return true
	}
	return false
}

func (p *parser) parseFile() (*File, error) {
	f := &File{Name: p.file}
	for p.cur().Kind != EOF {
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ := p.parsePtrSuffix(base)
		name, err := p.expect(Ident)
		if err != nil {
			return nil, err
		}
		if p.cur().Kind == LParen {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
		} else {
			g, err := p.parseGlobalRest(typ, name)
			if err != nil {
				return nil, err
			}
			f.Globals = append(f.Globals, g)
		}
	}
	return f, nil
}

func (p *parser) parseBaseType() (Type, error) {
	switch p.cur().Kind {
	case KwInt:
		p.advance()
		return TInt, nil
	case KwChar:
		p.advance()
		return TChar, nil
	case KwVoid:
		p.advance()
		return TVoid, nil
	}
	return Type{}, p.errf("expected type, found %s", p.cur())
}

func (p *parser) parsePtrSuffix(t Type) Type {
	for p.accept(Star) {
		t = t.AddrOf()
	}
	return t
}

func (p *parser) parseGlobalRest(typ Type, name Token) (*GlobalDecl, error) {
	g := &GlobalDecl{Line: name.Line, Name: name.Text, Type: typ}
	if typ.Base == BaseVoid && !typ.IsPtr() {
		return nil, p.errf("variable %s has void type", name.Text)
	}
	if p.accept(LBrack) {
		n, err := p.expect(IntLit)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, p.errf("array %s has non-positive length", name.Text)
		}
		g.ArrLen = n.Val
	}
	if p.accept(Assign) {
		switch t := p.cur(); t.Kind {
		case IntLit, CharLit:
			p.advance()
			g.Init = t.Val
			g.HasInit = true
		case Minus:
			p.advance()
			n, err := p.expect(IntLit)
			if err != nil {
				return nil, err
			}
			g.Init = -n.Val
			g.HasInit = true
		case StrLit:
			p.advance()
			g.InitStr = t.Text
			g.HasInit = true
		default:
			return nil, p.errf("global initializer must be a constant, found %s", t)
		}
	}
	_, err := p.expect(Semi)
	return g, err
}

func (p *parser) parseFuncRest(ret Type, name Token) (*FuncDecl, error) {
	fn := &FuncDecl{Line: name.Line, Name: name.Text, Ret: ret}
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	if !p.accept(RParen) {
		if p.cur().Kind == KwVoid && p.peek().Kind == RParen {
			p.advance()
			p.advance()
		} else {
			for {
				base, err := p.parseBaseType()
				if err != nil {
					return nil, err
				}
				typ := p.parsePtrSuffix(base)
				if typ.Base == BaseVoid && !typ.IsPtr() {
					return nil, p.errf("parameter has void type")
				}
				pname, err := p.expect(Ident)
				if err != nil {
					return nil, err
				}
				fn.Params = append(fn.Params, Param{Name: pname.Text, Type: typ})
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{Line: lb.Line}
	for p.cur().Kind != RBrace {
		if p.cur().Kind == EOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	p.advance()
	return blk, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	switch p.cur().Kind {
	case KwInt, KwChar:
		return p.parseDecl()
	case LBrace:
		return p.parseBlock()
	case KwIf:
		return p.parseIf()
	case KwWhile:
		return p.parseWhile()
	case KwFor:
		return p.parseFor()
	case KwReturn:
		line := p.advance().Line
		if p.accept(Semi) {
			return &ReturnStmt{Line: line}, nil
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Line: line, X: x}, nil
	case KwBreak:
		line := p.advance().Line
		_, err := p.expect(Semi)
		return &BreakStmt{Line: line}, err
	case KwContinue:
		line := p.advance().Line
		_, err := p.expect(Semi)
		return &ContinueStmt{Line: line}, err
	case Semi:
		line := p.advance().Line
		return &EmptyStmt{Line: line}, nil
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	line := x.exprLine()
	_, err = p.expect(Semi)
	return &ExprStmt{Line: line, X: x}, err
}

func (p *parser) parseDecl() (Stmt, error) {
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	typ := p.parsePtrSuffix(base)
	name, err := p.expect(Ident)
	if err != nil {
		return nil, err
	}
	d := &DeclStmt{Line: name.Line, Name: name.Text, Type: typ}
	if p.accept(LBrack) {
		n, err := p.expect(IntLit)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBrack); err != nil {
			return nil, err
		}
		if n.Val <= 0 {
			return nil, p.errf("array %s has non-positive length", name.Text)
		}
		d.ArrLen = n.Val
	} else if p.accept(Assign) {
		d.Init, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	_, err = p.expect(Semi)
	return d, err
}

func (p *parser) parseIf() (Stmt, error) {
	line := p.advance().Line
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Line: line, Cond: cond, Then: then}
	if p.accept(KwElse) {
		s.Else, err = p.parseStmt()
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	line := p.advance().Line
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Line: line, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	line := p.advance().Line
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	s := &ForStmt{Line: line}
	if !p.accept(Semi) {
		if p.cur().Kind == KwInt || p.cur().Kind == KwChar {
			d, err := p.parseDecl()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{Line: x.exprLine(), X: x}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(Semi) {
		var err error
		s.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
	}
	if p.cur().Kind != RParen {
		var err error
		s.Post, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Binary operator precedence; higher binds tighter. Assignment is handled
// separately (right-associative, lowest).
var binPrec = map[Kind]int{
	OrOr: 1, AndAnd: 2,
	Pipe: 3, Caret: 4, Amp: 5,
	EqEq: 6, NotEq: 6,
	Lt: 7, Le: 7, Gt: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

var compoundOps = map[Kind]bool{
	PlusEq: true, MinusEq: true, StarEq: true, SlashEq: true, PercentEq: true,
	AmpEq: true, PipeEq: true, CaretEq: true, ShlEq: true, ShrEq: true,
}

// parseExpr parses an assignment expression.
func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	k := p.cur().Kind
	if k == Assign || compoundOps[k] {
		line := p.advance().Line
		rhs, err := p.parseExpr() // right-associative
		if err != nil {
			return nil, err
		}
		return &AssignExpr{Line: line, Op: k, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		line := p.advance().Line
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinExpr{Line: line, Op: op, X: lhs, Y: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch k := p.cur().Kind; k {
	case Minus, Tilde, Bang, Star, Amp:
		line := p.advance().Line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Line: line, Op: k, X: x}, nil
	case Inc, Dec:
		line := p.advance().Line
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &IncDecExpr{Line: line, Op: k, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case LBrack:
			line := p.advance().Line
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBrack); err != nil {
				return nil, err
			}
			x = &IndexExpr{Line: line, X: x, Idx: idx}
		case Inc, Dec:
			t := p.advance()
			x = &IncDecExpr{Line: t.Line, Op: t.Kind, X: x, Post: true}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch t := p.cur(); t.Kind {
	case IntLit, CharLit:
		p.advance()
		return &IntExpr{Line: t.Line, Val: t.Val}, nil
	case StrLit:
		p.advance()
		return &StrExpr{Line: t.Line, Val: t.Text}, nil
	case LParen:
		p.advance()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(RParen)
		return x, err
	case Ident:
		p.advance()
		if p.cur().Kind == LParen {
			p.advance()
			call := &CallExpr{Line: t.Line, Name: t.Text}
			if !p.accept(RParen) {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
					if !p.accept(Comma) {
						break
					}
				}
				if _, err := p.expect(RParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &VarExpr{Line: t.Line, Name: t.Text}, nil
	}
	return nil, p.errf("expected expression, found %s", p.cur())
}
