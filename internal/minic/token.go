// Package minic implements a small C-like language and its compiler to the
// node-level IR in internal/ir.
//
// The paper's translating loader decompiles VAX-family object code into a
// node intermediate form. We have no proprietary object code, so MiniC plays
// the part of the original compiler + decompiler: the five benchmarks are
// written in MiniC and compiled straight to nodes. The language is a C
// subset chosen so that general-purpose, pointer-heavy utility code (sort,
// grep, diff, cpp, compress) can be written naturally:
//
//	types:       int (32-bit), char (8-bit), pointers (multi-level), arrays
//	statements:  if/else, while, for, break, continue, return, blocks
//	expressions: the usual C operators including short-circuit && and ||,
//	             prefix/postfix ++ and --, indexing, unary * and &,
//	             assignment and op-assignment
//	literals:    decimal/hex ints, 'c' char literals, "..." strings
//	builtins:    getc(stream), putc(c)
//
// Globals (scalars and arrays) live in the data segment; scalar locals are
// register-allocated unless their address is taken; local arrays and
// addressed locals live in the stack frame.
package minic

import "fmt"

// Kind classifies a token.
type Kind uint8

const (
	EOF Kind = iota
	Ident
	IntLit
	CharLit
	StrLit

	// Keywords.
	KwInt
	KwChar
	KwVoid
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBrack
	RBrack
	Semi
	Comma
	Assign    // =
	PlusEq    // +=
	MinusEq   // -=
	StarEq    // *=
	SlashEq   // /=
	PercentEq // %=
	AmpEq     // &=
	PipeEq    // |=
	CaretEq   // ^=
	ShlEq     // <<=
	ShrEq     // >>=
	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	Lt
	Le
	Gt
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Inc // ++
	Dec // --
)

var kindNames = map[Kind]string{
	EOF: "end of file", Ident: "identifier", IntLit: "integer literal",
	CharLit: "char literal", StrLit: "string literal",
	KwInt: "int", KwChar: "char", KwVoid: "void", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwFor: "for", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue",
	LParen:     "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBrack: "[", RBrack: "]", Semi: ";", Comma: ",",
	Assign: "=", PlusEq: "+=", MinusEq: "-=", StarEq: "*=", SlashEq: "/=",
	PercentEq: "%=", AmpEq: "&=", PipeEq: "|=", CaretEq: "^=",
	ShlEq: "<<=", ShrEq: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||", Inc: "++", Dec: "--",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "void": KwVoid, "if": KwIf, "else": KwElse,
	"while": KwWhile, "for": KwFor, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue,
}

// Token is a lexed token. Val holds the value of integer and char literals;
// Text holds identifier names and decoded string literal contents.
type Token struct {
	Kind Kind
	Text string
	Val  int32
	Line int
}

func (t Token) String() string {
	switch t.Kind {
	case Ident:
		return t.Text
	case IntLit, CharLit:
		return fmt.Sprintf("%d", t.Val)
	case StrLit:
		return fmt.Sprintf("%q", t.Text)
	}
	return t.Kind.String()
}

// Error is a compile error with a source line.
type Error struct {
	File string
	Line int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}
