package minic

import (
	"fmt"
	"math/bits"
	"sort"

	"fgpsim/internal/ir"
)

// Register conventions for the allocator. r0 is left unused (a handy "always
// zero by convention" register), r1 is the return value, r2..r4 are spill
// scratch, and r5..r62 are allocatable. r63 is the stack pointer.
const (
	scratchA  = ir.Reg(2)
	scratchB  = ir.Reg(3)
	scratchD  = ir.Reg(4)
	firstAllc = ir.Reg(5)
	lastAllc  = ir.Reg(62)
)

// interval is a live interval of a virtual register over the linearized
// node positions of one function.
type interval struct {
	v          ir.Reg
	start, end int
}

// allocator rewrites one function from virtual to architectural registers.
// All allocatable registers are caller-saved: any virtual register whose
// interval crosses a call site is demoted to a stack slot (the classic
// "assign call-crossing values to memory" discipline of simple compilers,
// which also models caller-save traffic realistically).
type allocator struct {
	prog *ir.Program
	fn   *ir.Func
	numV int // virtual register count (vregs are firstVReg..firstVReg+numV)

	blockStart map[ir.BlockID]int
	blockEnd   map[ir.BlockID]int
	callPos    []int

	liveIn  map[ir.BlockID][]uint64
	liveOut map[ir.BlockID][]uint64

	spilled  map[ir.Reg]int32 // vreg -> frame slot offset
	assigned map[ir.Reg]ir.Reg
	nextSlot int32
}

func isVReg(r ir.Reg) bool { return r >= firstVReg }

// alloc performs allocation and rewriting. frameOff is the first free frame
// offset (after declared locals); it returns the final frame size.
func (a *allocator) alloc(frameOff int32) (int32, error) {
	a.nextSlot = frameOff
	a.spilled = make(map[ir.Reg]int32)
	a.assigned = make(map[ir.Reg]ir.Reg)

	a.number()
	a.liveness()
	ivs := a.intervals()

	// Demote call-crossing vregs to memory.
	for _, iv := range ivs {
		for _, c := range a.callPos {
			if iv.start < c && iv.end > c {
				a.spill(iv.v)
				break
			}
		}
	}

	// Linear scan over the rest.
	var scan []interval
	for _, iv := range ivs {
		if _, sp := a.spilled[iv.v]; !sp {
			scan = append(scan, iv)
		}
	}
	sort.Slice(scan, func(i, j int) bool {
		if scan[i].start != scan[j].start {
			return scan[i].start < scan[j].start
		}
		return scan[i].v < scan[j].v
	})

	free := make([]ir.Reg, 0, lastAllc-firstAllc+1)
	for r := lastAllc; r >= firstAllc; r-- {
		free = append(free, r) // pop from the end -> lowest registers first
	}
	type activeIv struct {
		end int
		v   ir.Reg
		r   ir.Reg
	}
	var active []activeIv
	for _, iv := range scan {
		// Expire finished intervals.
		keep := active[:0]
		for _, act := range active {
			if act.end < iv.start {
				free = append(free, act.r)
			} else {
				keep = append(keep, act)
			}
		}
		active = keep
		if len(free) == 0 {
			// Spill the interval that ends furthest away.
			victim := -1
			furthest := iv.end
			for i, act := range active {
				if act.end > furthest {
					furthest = act.end
					victim = i
				}
			}
			if victim >= 0 {
				act := active[victim]
				a.spill(act.v)
				delete(a.assigned, act.v)
				active = append(active[:victim], active[victim+1:]...)
				free = append(free, act.r)
			} else {
				a.spill(iv.v)
				continue
			}
		}
		r := free[len(free)-1]
		free = free[:len(free)-1]
		a.assigned[iv.v] = r
		active = append(active, activeIv{end: iv.end, v: iv.v, r: r})
	}

	a.rewrite()
	return a.nextSlot, nil
}

func (a *allocator) spill(v ir.Reg) {
	if _, ok := a.spilled[v]; ok {
		return
	}
	a.spilled[v] = a.nextSlot
	a.nextSlot += 4
}

// number assigns linear positions to nodes and records call sites.
func (a *allocator) number() {
	a.blockStart = make(map[ir.BlockID]int)
	a.blockEnd = make(map[ir.BlockID]int)
	pos := 0
	for _, id := range a.fn.Blocks {
		b := a.prog.Blocks[id]
		a.blockStart[id] = pos
		pos += len(b.Body) + 1
		a.blockEnd[id] = pos - 1 // terminator position
		if b.Term.Op == ir.Call {
			a.callPos = append(a.callPos, pos-1)
		}
	}
}

func (a *allocator) vbit(r ir.Reg) (int, bool) {
	if !isVReg(r) {
		return 0, false
	}
	return int(r - firstVReg), true
}

func setBit(bs []uint64, i int)      { bs[i/64] |= 1 << (i % 64) }
func clearBit(bs []uint64, i int)    { bs[i/64] &^= 1 << (i % 64) }
func getBit(bs []uint64, i int) bool { return bs[i/64]&(1<<(i%64)) != 0 }

func (a *allocator) nodeUses(n *ir.Node, f func(int)) {
	if i, ok := a.vbit(n.A); ok {
		f(i)
	}
	if i, ok := a.vbit(n.B); ok {
		f(i)
	}
}

// liveness computes per-block live-in/live-out of virtual registers by
// iterating backward dataflow to a fixed point.
func (a *allocator) liveness() {
	words := (a.numV + 63) / 64
	a.liveIn = make(map[ir.BlockID][]uint64, len(a.fn.Blocks))
	a.liveOut = make(map[ir.BlockID][]uint64, len(a.fn.Blocks))
	for _, id := range a.fn.Blocks {
		a.liveIn[id] = make([]uint64, words)
		a.liveOut[id] = make([]uint64, words)
	}
	changed := true
	tmp := make([]uint64, words)
	for changed {
		changed = false
		for i := len(a.fn.Blocks) - 1; i >= 0; i-- {
			id := a.fn.Blocks[i]
			b := a.prog.Blocks[id]
			out := a.liveOut[id]
			for w := range tmp {
				tmp[w] = 0
			}
			for _, s := range b.Succs() {
				if in, ok := a.liveIn[s]; ok {
					for w := range tmp {
						tmp[w] |= in[w]
					}
				}
			}
			for w := range out {
				if out[w] != tmp[w] {
					out[w] = tmp[w]
					changed = true
				}
			}
			// in = (out - defs) + uses, scanning backward.
			copy(tmp, out)
			nodes := b.Body
			term := &b.Term
			if i, ok := a.vbit(term.A); ok {
				setBit(tmp, i)
			}
			if i, ok := a.vbit(term.B); ok {
				setBit(tmp, i)
			}
			for k := len(nodes) - 1; k >= 0; k-- {
				n := &nodes[k]
				if n.Op.HasDst() {
					if i, ok := a.vbit(n.Dst); ok {
						clearBit(tmp, i)
					}
				}
				a.nodeUses(n, func(i int) { setBit(tmp, i) })
			}
			in := a.liveIn[id]
			for w := range in {
				if in[w] != tmp[w] {
					in[w] = tmp[w]
					changed = true
				}
			}
		}
	}
}

// intervals builds one conservative live interval per virtual register.
func (a *allocator) intervals() []interval {
	ivs := make(map[ir.Reg]*interval)
	touch := func(r ir.Reg, pos int) {
		if !isVReg(r) {
			return
		}
		iv, ok := ivs[r]
		if !ok {
			ivs[r] = &interval{v: r, start: pos, end: pos}
			return
		}
		if pos < iv.start {
			iv.start = pos
		}
		if pos > iv.end {
			iv.end = pos
		}
	}
	for _, id := range a.fn.Blocks {
		b := a.prog.Blocks[id]
		start, end := a.blockStart[id], a.blockEnd[id]
		for w, bits := range a.liveIn[id] {
			for bits != 0 {
				i := trailingZeros(bits)
				bits &^= 1 << i
				touch(firstVReg+ir.Reg(w*64+i), start)
			}
		}
		for w, bits := range a.liveOut[id] {
			for bits != 0 {
				i := trailingZeros(bits)
				bits &^= 1 << i
				touch(firstVReg+ir.Reg(w*64+i), end)
			}
		}
		pos := start
		for k := range b.Body {
			n := &b.Body[k]
			touch(n.A, pos)
			touch(n.B, pos)
			if n.Op.HasDst() {
				touch(n.Dst, pos)
			}
			pos++
		}
		touch(b.Term.A, pos)
		touch(b.Term.B, pos)
	}
	out := make([]interval, 0, len(ivs))
	for _, iv := range ivs {
		out = append(out, *iv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].v < out[j].v })
	return out
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// rewrite replaces virtual registers with their assignments, inserting
// spill loads/stores through the scratch registers.
func (a *allocator) rewrite() {
	for _, id := range a.fn.Blocks {
		b := a.prog.Blocks[id]
		var out []ir.Node
		for k := range b.Body {
			n := b.Body[k]
			out = a.rewriteNode(out, &n)
			out = append(out, n)
			if n.Op.HasDst() {
				if slot, sp := a.spilled[b.Body[k].Dst]; sp {
					out[len(out)-1].Dst = scratchD
					out = append(out, ir.Node{Op: ir.St, A: ir.RegSP, B: scratchD, Imm: int64(slot)})
				}
			}
		}
		term := b.Term
		out = a.rewriteNode(out, &term)
		b.Body = out
		b.Term = term
	}
}

// rewriteNode maps the source operands of n, appending spill reloads to out.
func (a *allocator) rewriteNode(out []ir.Node, n *ir.Node) []ir.Node {
	mapSrc := func(r ir.Reg, scratch ir.Reg) (ir.Reg, []ir.Node) {
		if !isVReg(r) {
			return r, out
		}
		if hw, ok := a.assigned[r]; ok {
			return hw, out
		}
		slot, ok := a.spilled[r]
		if !ok {
			// Never defined and never live anywhere we tracked (e.g. the
			// result register of a void call): read as conventional zero.
			return ir.Reg(0), out
		}
		out = append(out, ir.Node{Op: ir.Ld, Dst: scratch, A: ir.RegSP, Imm: int64(slot)})
		return scratch, out
	}
	if n.A == n.B && isVReg(n.A) {
		n.A, out = mapSrc(n.A, scratchA)
		n.B = n.A
	} else {
		n.A, out = mapSrc(n.A, scratchA)
		n.B, out = mapSrc(n.B, scratchB)
	}
	if n.Op.HasDst() && isVReg(n.Dst) {
		if hw, ok := a.assigned[n.Dst]; ok {
			n.Dst = hw
		}
		// Spilled destinations are handled by the caller (store after).
		if _, sp := a.spilled[n.Dst]; !sp {
			if isVReg(n.Dst) {
				// Dead definition that no interval claimed; send it to the
				// conventional zero register's shadow (r0 is never read).
				n.Dst = ir.Reg(0)
			}
		}
	}
	return out
}

// patchFrames replaces frame-sentinel immediates with the final frame size
// and drops zero-sized adjustments.
func patchFrames(p *ir.Program, f *ir.Func, frameSize int32) {
	fix := func(n *ir.Node) bool {
		switch {
		case n.Imm >= frameSentinel/2:
			n.Imm = n.Imm - frameSentinel + int64(frameSize)
		case n.Imm <= -frameSentinel/2:
			n.Imm = n.Imm + frameSentinel - int64(frameSize)
		default:
			return false
		}
		// A stack adjustment of zero is a no-op; signal droppable.
		return n.Op == ir.AddI && n.Dst == ir.RegSP && n.A == ir.RegSP && n.Imm == 0
	}
	for _, id := range f.Blocks {
		b := p.Blocks[id]
		var out []ir.Node
		for k := range b.Body {
			n := b.Body[k]
			if drop := fix(&n); !drop {
				out = append(out, n)
			}
		}
		b.Body = out
		fix(&b.Term)
	}
}

// allocFunc allocates registers for one function and returns the final
// frame size in bytes.
func allocFunc(p *ir.Program, f *ir.Func, numV int, frameOff int32) (int32, error) {
	a := &allocator{prog: p, fn: f, numV: numV}
	size, err := a.alloc(frameOff)
	if err != nil {
		return 0, err
	}
	// Sanity: no virtual registers may remain.
	for _, id := range f.Blocks {
		b := p.Blocks[id]
		check := func(n *ir.Node) error {
			if isVReg(n.A) || isVReg(n.B) || (n.Op.HasDst() && isVReg(n.Dst)) {
				return fmt.Errorf("minic: %s: unallocated virtual register in %s", f.Name, n)
			}
			return nil
		}
		for k := range b.Body {
			if err := check(&b.Body[k]); err != nil {
				return 0, err
			}
		}
		if err := check(&b.Term); err != nil {
			return 0, err
		}
	}
	return size, nil
}
