package minic

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := Parse("p.mc", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestLexerTokens(t *testing.T) {
	toks, err := lexAll("l.mc", `int x = 0x1F + 'a'; // comment
/* block
comment */ char *s = "a\nb";`)
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]Kind, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
	}
	want := []Kind{KwInt, Ident, Assign, IntLit, Plus, CharLit, Semi,
		KwChar, Star, Ident, Assign, StrLit, Semi, EOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	if toks[3].Val != 0x1F {
		t.Errorf("hex literal = %d", toks[3].Val)
	}
	if toks[5].Val != 'a' {
		t.Errorf("char literal = %d", toks[5].Val)
	}
	if toks[11].Text != "a\nb" {
		t.Errorf("string literal = %q", toks[11].Text)
	}
}

func TestLexerLineNumbers(t *testing.T) {
	toks, err := lexAll("l.mc", "int\nx\n=\n1;\n")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{1, 2, 3, 4, 4} {
		if toks[i].Line != want {
			t.Errorf("token %d on line %d, want %d", i, toks[i].Line, want)
		}
	}
}

func TestLexerErrors(t *testing.T) {
	cases := []string{
		"'ab'",        // unterminated char
		"'",           // bare quote
		`"abc`,        // unterminated string
		"\"a\nb\"",    // newline in string
		"'\\q'",       // unknown escape
		"0x",          // empty hex
		"99999999999", // overflow
		"0xFFFFFFFFF", // hex overflow
		"@",           // junk byte
		"/* forever",  // unterminated comment
	}
	for _, src := range cases {
		if _, err := lexAll("e.mc", "int x = "+src+";"); err == nil {
			t.Errorf("lexAll accepted %q", src)
		}
	}
}

// exprOf extracts the expression of "int main() { return <e>; }".
func exprOf(t *testing.T, e string) Expr {
	t.Helper()
	f := parseOK(t, "int main() { return "+e+"; }")
	ret := f.Funcs[0].Body.List[0].(*ReturnStmt)
	return ret.X
}

func TestPrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c).
	e := exprOf(t, "a + b * c").(*BinExpr)
	if e.Op != Plus {
		t.Fatalf("top op = %v, want +", e.Op)
	}
	if inner, ok := e.Y.(*BinExpr); !ok || inner.Op != Star {
		t.Fatal("b*c should bind tighter than +")
	}

	// a << b + c parses as a << (b+c).
	e = exprOf(t, "a << b + c").(*BinExpr)
	if e.Op != Shl {
		t.Fatalf("top op = %v, want <<", e.Op)
	}

	// a == b & c parses as (a==b) & c (C's & is below ==).
	e = exprOf(t, "a == b & c").(*BinExpr)
	if e.Op != Amp {
		t.Fatalf("top op = %v, want &", e.Op)
	}
	if inner, ok := e.X.(*BinExpr); !ok || inner.Op != EqEq {
		t.Fatal("== should bind tighter than &")
	}

	// a || b && c parses as a || (b&&c).
	e = exprOf(t, "a || b && c").(*BinExpr)
	if e.Op != OrOr {
		t.Fatalf("top op = %v, want ||", e.Op)
	}

	// a - b - c is left-associative: (a-b) - c.
	e = exprOf(t, "a - b - c").(*BinExpr)
	if inner, ok := e.X.(*BinExpr); !ok || inner.Op != Minus {
		t.Fatal("- should be left-associative")
	}
}

func TestAssignmentRightAssociative(t *testing.T) {
	f := parseOK(t, "int main() { int a; int b; a = b = 1; return a; }")
	st := f.Funcs[0].Body.List[2].(*ExprStmt)
	outer := st.X.(*AssignExpr)
	if _, ok := outer.RHS.(*AssignExpr); !ok {
		t.Fatal("a = b = 1 should parse as a = (b = 1)")
	}
}

func TestUnaryBinding(t *testing.T) {
	// -a * b parses as (-a) * b.
	e := exprOf(t, "-a * b").(*BinExpr)
	if e.Op != Star {
		t.Fatalf("top = %v", e.Op)
	}
	if _, ok := e.X.(*UnExpr); !ok {
		t.Fatal("unary minus should bind to a")
	}
	// *p++ parses as *(p++) (postfix binds tighter).
	u := exprOf(t, "*p++").(*UnExpr)
	if u.Op != Star {
		t.Fatal("deref should be on top")
	}
	if inc, ok := u.X.(*IncDecExpr); !ok || !inc.Post {
		t.Fatal("p++ should bind under *")
	}
}

func TestPostfixChains(t *testing.T) {
	// a[1][2] nests index expressions.
	e := exprOf(t, "a[1][2]").(*IndexExpr)
	if _, ok := e.X.(*IndexExpr); !ok {
		t.Fatal("a[1][2] should nest")
	}
	// f(1)(…) is not supported (no function pointers): f(1)[2] is.
	e2 := exprOf(t, "f(1)[2]").(*IndexExpr)
	if _, ok := e2.X.(*CallExpr); !ok {
		t.Fatal("call should nest under index")
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		"int main() { return 1 + ; }",
		"int main() { if (1 { return 0; } }",
		"int main() { while 1) {} }",
		"int main() { int x[0]; return 0; }",
		"int x[0]; int main() { return 0; }",
		"int main() { for (;; { } }",
		"int main( { return 0; }",
		"int main() { return 0 }",
		"int main() { { return 0; }", // unterminated block
		"int 5x; int main() { return 0; }",
		"void; int main() { return 0; }",
		"int g = f(); int main() { return 0; }", // non-constant global init
		"int main(void x) { return 0; }",
	}
	for _, src := range cases {
		if _, err := Parse("e.mc", src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestVoidParamList(t *testing.T) {
	f := parseOK(t, "int main(void) { return 0; }")
	if len(f.Funcs[0].Params) != 0 {
		t.Error("(void) should mean no parameters")
	}
}

func TestGlobalNegativeInit(t *testing.T) {
	f := parseOK(t, "int g = -5; int main() { return 0; }")
	if f.Globals[0].Init != -5 {
		t.Errorf("init = %d, want -5", f.Globals[0].Init)
	}
}

func TestTypeStrings(t *testing.T) {
	if TInt.String() != "int" || TCharPtr.String() != "char*" {
		t.Error("type strings wrong")
	}
	pp := TInt.AddrOf().AddrOf()
	if pp.String() != "int**" {
		t.Errorf("int** prints as %s", pp)
	}
	if pp.Elem().String() != "int*" {
		t.Error("Elem wrong")
	}
	if TInt.Size() != 4 || TChar.Size() != 1 || TCharPtr.Size() != 4 {
		t.Error("sizes wrong")
	}
}

func TestErrorMessagesCarryPosition(t *testing.T) {
	_, err := Parse("file.mc", "int main() {\n\treturn @;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "file.mc:2") {
		t.Errorf("error %q should carry file:line", err)
	}
}
