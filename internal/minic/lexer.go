package minic

import "fmt"

// lexer turns MiniC source into tokens. It supports // line comments and
// /* */ block comments, decimal and 0x hex integers, and the usual C escape
// sequences in char and string literals.
type lexer struct {
	file string
	src  string
	pos  int
	line int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1}
}

func (lx *lexer) errf(format string, args ...any) error {
	return &Error{File: lx.file, Line: lx.line, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peek() byte {
	if lx.pos < len(lx.src) {
		return lx.src[lx.pos]
	}
	return 0
}

func (lx *lexer) peek2() byte {
	if lx.pos+1 < len(lx.src) {
		return lx.src[lx.pos+1]
	}
	return 0
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
	}
	return c
}

func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		switch c := lx.peek(); {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.line
			lx.advance()
			lx.advance()
			for {
				if lx.pos >= len(lx.src) {
					lx.line = start
					return lx.errf("unterminated block comment")
				}
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// next lexes and returns the next token.
func (lx *lexer) next() (Token, error) {
	if err := lx.skipSpace(); err != nil {
		return Token{}, err
	}
	tok := Token{Line: lx.line}
	if lx.pos >= len(lx.src) {
		tok.Kind = EOF
		return tok, nil
	}
	c := lx.peek()
	switch {
	case isAlpha(c):
		start := lx.pos
		for lx.pos < len(lx.src) && (isAlpha(lx.peek()) || isDigit(lx.peek())) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		if kw, ok := keywords[text]; ok {
			tok.Kind = kw
		} else {
			tok.Kind = Ident
			tok.Text = text
		}
		return tok, nil

	case isDigit(c):
		return lx.lexNumber()

	case c == '\'':
		return lx.lexChar()

	case c == '"':
		return lx.lexString()
	}
	return lx.lexOperator()
}

func (lx *lexer) lexNumber() (Token, error) {
	tok := Token{Kind: IntLit, Line: lx.line}
	var v int64
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		if !isHexDigit(lx.peek()) {
			return tok, lx.errf("malformed hex literal")
		}
		for lx.pos < len(lx.src) && isHexDigit(lx.peek()) {
			d := lx.advance()
			switch {
			case d <= '9':
				v = v*16 + int64(d-'0')
			case d >= 'a':
				v = v*16 + int64(d-'a'+10)
			default:
				v = v*16 + int64(d-'A'+10)
			}
			if v > 0xFFFFFFFF {
				return tok, lx.errf("hex literal too large")
			}
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			v = v*10 + int64(lx.advance()-'0')
			if v > 1<<31 {
				return tok, lx.errf("integer literal too large")
			}
		}
	}
	tok.Val = int32(v)
	return tok, nil
}

func (lx *lexer) escape() (byte, error) {
	if lx.pos >= len(lx.src) {
		return 0, lx.errf("unterminated escape")
	}
	switch c := lx.advance(); c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	default:
		return 0, lx.errf("unknown escape \\%c", c)
	}
}

func (lx *lexer) lexChar() (Token, error) {
	tok := Token{Kind: CharLit, Line: lx.line}
	lx.advance() // opening quote
	if lx.pos >= len(lx.src) {
		return tok, lx.errf("unterminated char literal")
	}
	var b byte
	if lx.peek() == '\\' {
		lx.advance()
		e, err := lx.escape()
		if err != nil {
			return tok, err
		}
		b = e
	} else {
		b = lx.advance()
	}
	if lx.pos >= len(lx.src) || lx.peek() != '\'' {
		return tok, lx.errf("unterminated char literal")
	}
	lx.advance()
	tok.Val = int32(b)
	return tok, nil
}

func (lx *lexer) lexString() (Token, error) {
	tok := Token{Kind: StrLit, Line: lx.line}
	lx.advance() // opening quote
	var buf []byte
	for {
		if lx.pos >= len(lx.src) {
			return tok, lx.errf("unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return tok, lx.errf("newline in string literal")
		}
		if c == '\\' {
			e, err := lx.escape()
			if err != nil {
				return tok, err
			}
			c = e
		}
		buf = append(buf, c)
	}
	tok.Text = string(buf)
	return tok, nil
}

// twoCharOps maps a leading operator byte to its two-character extensions.
var twoCharOps = map[byte][]struct {
	second byte
	kind   Kind
}{
	'+': {{'+', Inc}, {'=', PlusEq}},
	'-': {{'-', Dec}, {'=', MinusEq}},
	'*': {{'=', StarEq}},
	'/': {{'=', SlashEq}},
	'%': {{'=', PercentEq}},
	'&': {{'&', AndAnd}, {'=', AmpEq}},
	'|': {{'|', OrOr}, {'=', PipeEq}},
	'^': {{'=', CaretEq}},
	'=': {{'=', EqEq}},
	'!': {{'=', NotEq}},
	'<': {{'=', Le}},
	'>': {{'=', Ge}},
}

var oneCharOps = map[byte]Kind{
	'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
	'[': LBrack, ']': RBrack, ';': Semi, ',': Comma,
	'+': Plus, '-': Minus, '*': Star, '/': Slash, '%': Percent,
	'&': Amp, '|': Pipe, '^': Caret, '~': Tilde, '!': Bang,
	'<': Lt, '>': Gt, '=': Assign,
}

func (lx *lexer) lexOperator() (Token, error) {
	tok := Token{Line: lx.line}
	c := lx.advance()

	// Three-character operators: <<= and >>=.
	if c == '<' && lx.peek() == '<' {
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			tok.Kind = ShlEq
		} else {
			tok.Kind = Shl
		}
		return tok, nil
	}
	if c == '>' && lx.peek() == '>' {
		lx.advance()
		if lx.peek() == '=' {
			lx.advance()
			tok.Kind = ShrEq
		} else {
			tok.Kind = Shr
		}
		return tok, nil
	}
	for _, ext := range twoCharOps[c] {
		if lx.peek() == ext.second {
			lx.advance()
			tok.Kind = ext.kind
			return tok, nil
		}
	}
	if k, ok := oneCharOps[c]; ok {
		tok.Kind = k
		return tok, nil
	}
	return tok, lx.errf("unexpected character %q", c)
}

// lexAll tokenizes the entire source.
func lexAll(file, src string) ([]Token, error) {
	lx := newLexer(file, src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
