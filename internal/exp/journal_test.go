package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

func journalKey(bench string) Key {
	return KeyOf(bench, machine.Config{Disc: machine.Dyn4, Issue: machine.IssueModels[0], Mem: machine.MemConfigs[0]})
}

func runWithCycles(c int64) *stats.Run {
	s := stats.New()
	s.Cycles = c
	return s
}

func TestJournalAppendReadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("a"), journalKey("b")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(10)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry{Key: k2, Stats: runWithCycles(20)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[k1].Cycles != 10 || m[k2].Cycles != 20 {
		t.Fatalf("read %d entries: %+v", len(m), m)
	}
}

// TestJournalDuplicateKeysLastWriteWins covers resume deduplication: a
// journal holding several lines for the same key (a cell re-run after a
// partial resume) must restore the latest line.
func TestJournalDuplicateKeysLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k := journalKey("dup")
	for _, cycles := range []int64{1, 2, 3} {
		if err := j.Append(journalEntry{Key: k, Stats: runWithCycles(cycles)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k].Cycles != 3 {
		t.Fatalf("want single entry with cycles=3 (last write), got %+v", m)
	}
}

// TestJournalReplayedTwice doubles the journal file onto itself — the shape
// a resumed-then-resumed sweep or a concatenated backup produces — and
// checks the read is identical to reading it once.
func TestJournalReplayedTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("x"), journalKey("y")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(7)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry{Key: k2, Stats: runWithCycles(9)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	once, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte{}, data...), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	twice, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(twice) != len(once) {
		t.Fatalf("replayed journal has %d keys, want %d", len(twice), len(once))
	}
	for k, s := range once {
		if twice[k] == nil || twice[k].Cycles != s.Cycles {
			t.Fatalf("key %v: replayed %+v, want %+v", k, twice[k], s)
		}
	}
}

// TestJournalTornTailTolerated cuts the final line mid-JSON (what a crash
// during an append leaves behind) and checks only that line is lost.
func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("keep"), journalKey("torn")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(5)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry{Key: k2, Stats: runWithCycles(6)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k1] == nil || m[k1].Cycles != 5 {
		t.Fatalf("torn journal read %+v, want only the intact first entry", m)
	}
}

// TestJournalOpenIsAppend re-opens an existing journal and checks the new
// writer extends rather than truncates it.
func TestJournalOpenIsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := journalKey("first")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k2 := journalKey("second")
	if err := j2.Append(journalEntry{Key: k2, Stats: runWithCycles(2)}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("append reopen lost entries: %+v", m)
	}
}

// TestReplayJournalSkipsMalformed checks arbitrary garbage lines in the
// middle of a journal are skipped without aborting the replay.
func TestReplayJournalSkipsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	k := journalKey("good")
	good, _ := json.Marshal(journalEntry{Key: k, Stats: runWithCycles(4)})
	content := append([]byte("{not json\n\n"), good...)
	content = append(content, '\n')
	content = append(content, []byte("{\"key\":{},\"stats\":null}\n")...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k] == nil || m[k].Cycles != 4 {
		t.Fatalf("read %+v, want only the well-formed entry", m)
	}
}

// TestReadJournalMissingFile treats a nonexistent journal as empty.
func TestReadJournalMissingFile(t *testing.T) {
	m, err := ReadJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("missing journal read %+v, want empty", m)
	}
}
