package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

func journalKey(bench string) Key {
	return KeyOf(bench, machine.Config{Disc: machine.Dyn4, Issue: machine.IssueModels[0], Mem: machine.MemConfigs[0]})
}

func runWithCycles(c int64) *stats.Run {
	s := stats.New()
	s.Cycles = c
	return s
}

func TestJournalAppendReadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("a"), journalKey("b")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(10)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry{Key: k2, Stats: runWithCycles(20)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[k1].Cycles != 10 || m[k2].Cycles != 20 {
		t.Fatalf("read %d entries: %+v", len(m), m)
	}
}

// TestJournalDuplicateKeysLastWriteWins covers resume deduplication: a
// journal holding several lines for the same key (a cell re-run after a
// partial resume) must restore the latest line.
func TestJournalDuplicateKeysLastWriteWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k := journalKey("dup")
	for _, cycles := range []int64{1, 2, 3} {
		if err := j.Append(journalEntry{Key: k, Stats: runWithCycles(cycles)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k].Cycles != 3 {
		t.Fatalf("want single entry with cycles=3 (last write), got %+v", m)
	}
}

// TestJournalReplayedTwice doubles the journal file onto itself — the shape
// a resumed-then-resumed sweep or a concatenated backup produces — and
// checks the read is identical to reading it once.
func TestJournalReplayedTwice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("x"), journalKey("y")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(7)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry{Key: k2, Stats: runWithCycles(9)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	once, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(append([]byte{}, data...), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	twice, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(twice) != len(once) {
		t.Fatalf("replayed journal has %d keys, want %d", len(twice), len(once))
	}
	for k, s := range once {
		if twice[k] == nil || twice[k].Cycles != s.Cycles {
			t.Fatalf("key %v: replayed %+v, want %+v", k, twice[k], s)
		}
	}
}

// TestJournalTornTailTolerated cuts the final line mid-JSON (what a crash
// during an append leaves behind) and checks only that line is lost.
func TestJournalTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("keep"), journalKey("torn")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(5)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalEntry{Key: k2, Stats: runWithCycles(6)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k1] == nil || m[k1].Cycles != 5 {
		t.Fatalf("torn journal read %+v, want only the intact first entry", m)
	}
}

// TestJournalOpenIsAppend re-opens an existing journal and checks the new
// writer extends rather than truncates it.
func TestJournalOpenIsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1 := journalKey("first")
	if err := j.Append(journalEntry{Key: k1, Stats: runWithCycles(1)}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k2 := journalKey("second")
	if err := j2.Append(journalEntry{Key: k2, Stats: runWithCycles(2)}); err != nil {
		t.Fatal(err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("append reopen lost entries: %+v", m)
	}
}

// TestReplayJournalSkipsMalformed checks arbitrary garbage lines in the
// middle of a journal are skipped without aborting the replay.
func TestReplayJournalSkipsMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	k := journalKey("good")
	good, _ := json.Marshal(journalEntry{Key: k, Stats: runWithCycles(4)})
	content := append([]byte("{not json\n\n"), good...)
	content = append(content, '\n')
	content = append(content, []byte("{\"key\":{},\"stats\":null}\n")...)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k] == nil || m[k].Cycles != 4 {
		t.Fatalf("read %+v, want only the well-formed entry", m)
	}
}

// TestJournalMultiWriterDedupDeterministic is the regression test for the
// fabric's requeue race: two workers both complete the same cell (one was
// presumed dead and the cell was requeued, then the "dead" worker's result
// arrived anyway), and their records land in the journal in whichever
// order the network delivered them. The dedup must resolve by (attempt
// ordinal, fingerprint), not file order: the same winner regardless of
// interleaving.
func TestJournalMultiWriterDedupDeterministic(t *testing.T) {
	k := journalKey("race")
	first := runWithCycles(100)  // attempt 1: the original assignment
	second := runWithCycles(200) // attempt 2: the requeued assignment

	write := func(t *testing.T, entries []journalEntry) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "cells.journal")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if err := j.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	stamp := func(s *stats.Run, attempt int) journalEntry {
		return journalEntry{Key: k, Stats: s, Fp: fmt.Sprintf("%016x", StatsFingerprint(s)), Attempt: attempt}
	}

	// Both interleavings of the duplicate records must pick attempt 2.
	for name, order := range map[string][]journalEntry{
		"old-then-new": {stamp(first, 1), stamp(second, 2)},
		"new-then-old": {stamp(second, 2), stamp(first, 1)},
	} {
		m, err := ReadJournal(write(t, order))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m) != 1 || m[k].Cycles != 200 {
			t.Fatalf("%s: want attempt-2 record (cycles=200) to win, got %+v", name, m[k])
		}
	}

	// Equal attempts (two workers raced the same assignment epoch — a
	// duplicate steal) resolve by fingerprint, again order-independently.
	a := runWithCycles(10)
	b := runWithCycles(20)
	fa, fb := StatsFingerprint(a), StatsFingerprint(b)
	if fa == fb {
		t.Fatal("test stats must fingerprint differently")
	}
	wantCycles := int64(10)
	if fb > fa {
		wantCycles = 20
	}
	for name, order := range map[string][]journalEntry{
		"a-then-b": {stamp(a, 3), stamp(b, 3)},
		"b-then-a": {stamp(b, 3), stamp(a, 3)},
	} {
		m, err := ReadJournal(write(t, order))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m) != 1 || m[k].Cycles != wantCycles {
			t.Fatalf("%s: want fingerprint-ordered winner (cycles=%d), got %+v", name, wantCycles, m[k])
		}
	}
}

// TestMergeJournalsAcrossFiles merges two worker journals holding disjoint
// and overlapping cells and checks the overlap resolves by attempt, not by
// which path is listed first.
func TestMergeJournalsAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	kShared, kA, kB := journalKey("shared"), journalKey("only-a"), journalKey("only-b")

	writeCells := func(name string, appends func(j *Journal)) string {
		path := filepath.Join(dir, name)
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		appends(j)
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	pa := writeCells("worker-a.cells", func(j *Journal) {
		j.AppendCell(kA, runWithCycles(1), 1)
		j.AppendCell(kShared, runWithCycles(50), 1)
	})
	pb := writeCells("worker-b.cells", func(j *Journal) {
		j.AppendCell(kB, runWithCycles(2), 1)
		j.AppendCell(kShared, runWithCycles(60), 2) // the requeued re-run
	})

	for name, paths := range map[string][]string{
		"a-first": {pa, pb},
		"b-first": {pb, pa},
	} {
		m, err := MergeJournals(paths...)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(m) != 3 {
			t.Fatalf("%s: merged %d cells, want 3", name, len(m))
		}
		if m[kA].Cycles != 1 || m[kB].Cycles != 2 {
			t.Fatalf("%s: disjoint cells mangled: %+v", name, m)
		}
		if m[kShared].Cycles != 60 {
			t.Fatalf("%s: shared cell want attempt-2 winner (60), got %d", name, m[kShared].Cycles)
		}
	}
}

// TestAppendCellReadRoundtrip checks the stamped append is readable by the
// plain resume path (ReadJournal) like any other record.
func TestAppendCellReadRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k := journalKey("stamped")
	if err := j.AppendCell(k, runWithCycles(7), 4); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[k].Cycles != 7 {
		t.Fatalf("stamped record not restored: %+v", m)
	}
}

// TestReadJournalMissingFile treats a nonexistent journal as empty.
func TestReadJournalMissingFile(t *testing.T) {
	m, err := ReadJournal(filepath.Join(t.TempDir(), "nope.journal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("missing journal read %+v, want empty", m)
	}
}
