package exp_test

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"fgpsim/internal/bench"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
)

func TestWriteCSV(t *testing.T) {
	b := bench.ByName("compress")
	p, err := exp.Prepare(b, enlarge.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	im2, _ := machine.IssueModelByID(2)
	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	cfgs := []machine.Config{
		{Disc: machine.Static, Issue: im2, Mem: mcA, Branch: machine.SingleBB},
		{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.EnlargedBB},
	}
	res, err := exp.Grid([]*exp.Prepared{p}, cfgs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(rows) != 3 { // header + 2 points
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	header := rows[0]
	if header[0] != "bench" || header[12] != "npc" {
		t.Errorf("unexpected header: %v", header)
	}
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			t.Errorf("row width %d != header %d", len(row), len(header))
		}
		if row[0] != "compress" {
			t.Errorf("bench column = %q", row[0])
		}
	}
	// Sorted: static row before dyn-w4.
	if rows[1][1] != "static" || rows[2][1] != "dyn-w4" {
		t.Errorf("rows not sorted by discipline: %v / %v", rows[1][1], rows[2][1])
	}
}
