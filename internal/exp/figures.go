package exp

import (
	"fmt"
	"math"
	"strings"

	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// ConfigFor builds the configuration for one curve at one grid point,
// rejecting issue-model or memory-config IDs outside the machine tables.
func ConfigFor(c Curve, issueID int, memID byte) (machine.Config, error) {
	im, ok := machine.IssueModelByID(issueID)
	if !ok {
		return machine.Config{}, fmt.Errorf("exp: unknown issue model %d", issueID)
	}
	mc, ok := machine.MemConfigByID(memID)
	if !ok {
		return machine.Config{}, fmt.Errorf("exp: unknown memory config %c", memID)
	}
	return machine.Config{Disc: c.Disc, Issue: im, Mem: mc, Branch: c.Branch}, nil
}

// MustConfigFor is ConfigFor for callers whose IDs come straight from the
// machine tables (the figure renderers, tests); it panics on unknown IDs.
func MustConfigFor(c Curve, issueID int, memID byte) machine.Config {
	cfg, err := ConfigFor(c, issueID, memID)
	if err != nil {
		panic(err)
	}
	return cfg
}

// FigureConfigs returns the minimal configuration set that regenerates all
// five figures (a subset of the full 560-point grid).
func FigureConfigs() []machine.Config {
	seen := make(map[string]bool)
	var out []machine.Config
	add := func(cfg machine.Config) {
		k := cfg.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, cfg)
		}
	}
	// Figures 3 and 6: every issue model at memory config A, ten curves.
	for _, c := range Curves() {
		for _, im := range machine.IssueModels {
			add(MustConfigFor(c, im.ID, 'A'))
		}
	}
	// Figure 4: every memory config at issue model 8, ten curves.
	for _, c := range Curves() {
		for _, mc := range machine.MemConfigs {
			add(MustConfigFor(c, 8, mc.ID))
		}
	}
	// Figure 5: the 14 composite configurations, dyn-w4 with enlargement.
	for _, fc := range machine.Figure5Configs {
		add(MustConfigFor(Curve{machine.Dyn4, machine.EnlargedBB}, fc.Issue, fc.Mem))
	}
	// Figure 2 uses dyn-w4 at 8/A single vs enlarged, already included.
	return out
}

func fmtCell(v float64) string {
	if math.IsNaN(v) {
		return "     -"
	}
	return fmt.Sprintf("%6.2f", v)
}

// Figure3 renders retired nodes per cycle versus issue model (memory
// configuration A), one column per curve — the paper's Figure 3.
func Figure3(r *Results, benches []string) string {
	var sb strings.Builder
	sb.WriteString("Figure 3: nodes/cycle vs issue model (memory config A, geometric mean over benchmarks)\n")
	curves := Curves()
	sb.WriteString("issue ")
	for _, c := range curves {
		fmt.Fprintf(&sb, " %16s", c)
	}
	sb.WriteByte('\n')
	for _, im := range machine.IssueModels {
		fmt.Fprintf(&sb, "%-6s", im)
		for _, c := range curves {
			v := r.GeoMeanNPC(benches, MustConfigFor(c, im.ID, 'A'))
			fmt.Fprintf(&sb, " %16s", fmtCell(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure4 renders retired nodes per cycle versus memory configuration
// (issue model 8) in the paper's axis order A D E B F G C.
func Figure4(r *Results, benches []string) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: nodes/cycle vs memory config (issue model 8, geometric mean over benchmarks)\n")
	curves := Curves()
	sb.WriteString("mem   ")
	for _, c := range curves {
		fmt.Fprintf(&sb, " %16s", c)
	}
	sb.WriteByte('\n')
	for _, id := range machine.FigureOrderMem {
		mc, _ := machine.MemConfigByID(id)
		fmt.Fprintf(&sb, "%-6s", mc)
		for _, c := range curves {
			v := r.GeoMeanNPC(benches, MustConfigFor(c, 8, id))
			fmt.Fprintf(&sb, " %16s", fmtCell(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure5 renders per-benchmark performance across the 14 composite
// configurations (dynamic scheduling, window 4, enlarged blocks).
func Figure5(r *Results, benches []string) string {
	var sb strings.Builder
	sb.WriteString("Figure 5: nodes/cycle per benchmark across composite configurations (dyn-w4, enlarged)\n")
	sb.WriteString("config")
	for _, b := range benches {
		fmt.Fprintf(&sb, " %10s", b)
	}
	sb.WriteByte('\n')
	for _, fc := range machine.Figure5Configs {
		cfg := MustConfigFor(Curve{machine.Dyn4, machine.EnlargedBB}, fc.Issue, fc.Mem)
		fmt.Fprintf(&sb, "%d%c    ", fc.Issue, fc.Mem)
		for _, b := range benches {
			s := r.Get(KeyOf(b, cfg))
			if s == nil {
				fmt.Fprintf(&sb, " %10s", "-")
			} else {
				fmt.Fprintf(&sb, " %10.2f", s.Speed())
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure6 renders operation redundancy (discarded/executed) versus issue
// model (memory configuration A) — the paper's Figure 6, whose curve order
// is the reverse of Figure 3's.
func Figure6(r *Results, benches []string) string {
	var sb strings.Builder
	sb.WriteString("Figure 6: operation redundancy vs issue model (memory config A, mean over benchmarks)\n")
	curves := Curves()
	sb.WriteString("issue ")
	for _, c := range curves {
		fmt.Fprintf(&sb, " %16s", c)
	}
	sb.WriteByte('\n')
	for _, im := range machine.IssueModels {
		fmt.Fprintf(&sb, "%-6s", im)
		for _, c := range curves {
			v := r.MeanRedundancy(benches, MustConfigFor(c, im.ID, 'A'))
			fmt.Fprintf(&sb, " %16s", fmtCell(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// WindowSweep lists the window depths of the extension figure.
var WindowSweep = []int{1, 2, 4, 8, 16, 32, 64, 128, 256}

// WindowConfigs returns the configurations behind FigureWindow.
func WindowConfigs() []machine.Config {
	var out []machine.Config
	for _, w := range WindowSweep {
		for _, bm := range []machine.BranchMode{machine.SingleBB, machine.EnlargedBB} {
			for _, pk := range []machine.PredictorKind{machine.TwoBit, machine.GSharePredictor} {
				cfg := MustConfigFor(Curve{machine.Dyn256, bm}, 8, 'A')
				cfg.WindowOverride = w
				cfg.Predictor = pk
				out = append(out, cfg)
			}
		}
	}
	return out
}

// FigureWindow renders the extension figure this reproduction adds: work-
// normalized nodes/cycle versus window depth at issue model 8, memory A,
// for single/enlarged blocks under the 2-bit and gshare predictors. It
// interpolates between the paper's 1/4/256 window points.
func FigureWindow(r *Results, benches []string) string {
	var sb strings.Builder
	sb.WriteString("Extension figure: nodes/cycle vs window depth (issue model 8, memory A)\n")
	sb.WriteString("window   single/2bit  single/gshare  enlarged/2bit  enlarged/gshare\n")
	for _, w := range WindowSweep {
		fmt.Fprintf(&sb, "%-8d", w)
		for _, bm := range []machine.BranchMode{machine.SingleBB, machine.EnlargedBB} {
			for _, pk := range []machine.PredictorKind{machine.TwoBit, machine.GSharePredictor} {
				cfg := MustConfigFor(Curve{machine.Dyn256, bm}, 8, 'A')
				cfg.WindowOverride = w
				cfg.Predictor = pk
				fmt.Fprintf(&sb, " %14s", fmtCell(r.GeoMeanNPC(benches, cfg)))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Figure2Bins is the histogram bin width in nodes.
const Figure2Bins = 5

// Figure2 renders the dynamic basic block size histograms for single and
// enlarged blocks (dyn-w4, issue model 8, memory configuration A),
// aggregated over the benchmarks — the paper's Figure 2.
func Figure2(r *Results, benches []string) string {
	agg := func(bm machine.BranchMode) *stats.Run {
		total := stats.New()
		cfg := MustConfigFor(Curve{machine.Dyn4, bm}, 8, 'A')
		for _, b := range benches {
			if s := r.Get(KeyOf(b, cfg)); s != nil {
				total.Merge(s)
			}
		}
		return total
	}
	single := agg(machine.SingleBB)
	enlarged := agg(machine.EnlargedBB)
	const maxSize = 60
	hs := single.Histogram(Figure2Bins, maxSize)
	he := enlarged.Histogram(Figure2Bins, maxSize)

	var sb strings.Builder
	sb.WriteString("Figure 2: dynamic basic block size histogram (fraction of retired blocks)\n")
	sb.WriteString("size        single  enlarged\n")
	for i := range hs {
		lo := i * Figure2Bins
		hi := lo + Figure2Bins - 1
		label := fmt.Sprintf("%d-%d", lo, hi)
		if i == len(hs)-1 {
			label = fmt.Sprintf("%d+", lo)
		}
		fmt.Fprintf(&sb, "%-10s %7.3f %9.3f\n", label, hs[i], he[i])
	}
	fmt.Fprintf(&sb, "mean size  %7.2f %9.2f\n", single.MeanBlockSize(), enlarged.MeanBlockSize())
	return sb.String()
}
