package exp

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgpsim/internal/chaos"
)

func TestDigestStatsDeterministic(t *testing.T) {
	a, b := DigestStats(runWithCycles(42)), DigestStats(runWithCycles(42))
	if a == "" || a != b {
		t.Fatalf("digest not deterministic: %q vs %q", a, b)
	}
	if c := DigestStats(runWithCycles(43)); c == a {
		t.Fatalf("distinct stats share digest %q", a)
	}
	if !strings.Contains(a, ":") {
		t.Fatalf("digest %q missing crc:length form", a)
	}
}

// TestJournalSingleByteCorruptionRejected is the tentpole's at-rest
// integrity check taken to exhaustion: with a digested three-record
// journal, corrupting any single byte of the middle record must reject
// exactly that record with a typed *IntegrityError while both neighbors
// merge intact. No byte of a record may be outside the digest's reach.
func TestJournalSingleByteCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := journalKey("n1"), journalKey("n2"), journalKey("n3")
	for i, k := range []Key{k1, k2, k3} {
		if err := j.AppendCell(k, runWithCycles(int64(11*(i+1))), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(orig, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal has %d lines, want >= 3", len(lines))
	}
	start := len(lines[0]) + 1 // byte offset of the middle record's line

	for off := 0; off < len(lines[1]); off++ {
		mut := append([]byte(nil), orig...)
		mut[start+off] ^= 0xff // never '\n', so line framing survives
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		var errs []*IntegrityError
		m, err := MergeJournalRecordsVerifiedOn(chaos.OS{}, func(ie *IntegrityError) { errs = append(errs, ie) }, path)
		if err != nil {
			t.Fatalf("offset %d: merge failed outright: %v", off, err)
		}
		if len(errs) == 0 {
			t.Fatalf("offset %d: single-byte corruption went undetected", off)
		}
		if _, ok := m[k2]; ok {
			t.Fatalf("offset %d: corrupted record survived the merge", off)
		}
		if len(m) != 2 || m[k1].Stats.Cycles != 11 || m[k3].Stats.Cycles != 33 {
			t.Fatalf("offset %d: neighbor records damaged: %d survivors", off, len(m))
		}
	}
}

// TestScrubJournalDetectsCorruptRecord covers the scrubber's journal half:
// detection with counts, never mutation.
func TestScrubJournalDetectsCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range []Key{journalKey("s1"), journalKey("s2")} {
		if err := j.AppendCell(k, runWithCycles(int64(i+1)), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	total, bad, err := ScrubJournalOn(chaos.OS{}, path)
	if err != nil || len(bad) != 0 {
		t.Fatalf("clean journal: total %d, bad %v, err %v", total, bad, err)
	}
	if total != 2 {
		t.Fatalf("clean journal: total = %d, want 2", total)
	}

	orig, _ := os.ReadFile(path)
	mut := append([]byte(nil), orig...)
	mut[bytes.IndexByte(mut, '{')+5] ^= 0xff // inside the first record
	if err := os.WriteFile(path, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	_, bad, err = ScrubJournalOn(chaos.OS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0].Hop != "scrub" {
		t.Fatalf("bad = %v, want exactly one scrub-hop error", bad)
	}
	after, _ := os.ReadFile(path)
	if !bytes.Equal(after, mut) {
		t.Fatal("scrub mutated the journal file (it must only detect)")
	}
}
