package exp

import (
	"testing"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// cacheFixture compiles a small program and builds its enlargement file, the
// two inputs every imageCache.load call needs.
func cacheFixture(t *testing.T) (*ir.Program, *enlarge.File) {
	t.Helper()
	const src = `
int main() {
	int i;
	int acc = 0;
	for (i = 0; i < 40; i++) {
		if (i % 3) acc += i; else acc -= i;
	}
	putc('a' + (acc % 26 + 26) % 26);
	return 0;
}
`
	prog, err := minic.Compile("cache.mc", src, minic.Options{Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	prof := interp.NewProfile()
	if _, err := interp.Run(prog, nil, nil, interp.Options{Profile: prof, MaxNodes: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	return prog, enlarge.Build(prog, prof, enlarge.DefaultOptions())
}

func cacheCfg(t *testing.T, d machine.Discipline, issue int, mem byte, bm machine.BranchMode) machine.Config {
	t.Helper()
	im, ok := machine.IssueModelByID(issue)
	if !ok {
		t.Fatalf("no issue model %d", issue)
	}
	mc, ok := machine.MemConfigByID(mem)
	if !ok {
		t.Fatalf("no mem config %c", mem)
	}
	return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm}
}

// TestImageCacheKeyIsolation pins which Config fields are codegen-relevant:
// configurations differing only in engine-level knobs (window, predictor,
// BTB, discipline for dynamic machines) must share one cached image, while
// block mode, static issue model, and static hit latency must not.
func TestImageCacheKeyIsolation(t *testing.T) {
	prog, ef := cacheFixture(t)
	var c imageCache

	load := func(cfg machine.Config) *ir.Program {
		img, err := c.load(prog, cfg, ef)
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if img.Cfg != cfg {
			t.Fatalf("%s: cached hit returned Cfg %s", cfg, img.Cfg)
		}
		return img.Prog
	}

	// Same codegen key across engine-level variation: one entry, one
	// underlying program clone.
	base := cacheCfg(t, machine.Dyn4, 8, 'A', machine.EnlargedBB)
	p1 := load(base)

	deep := base
	deep.WindowOverride = 17
	gshare := cacheCfg(t, machine.Dyn256, 8, 'E', machine.EnlargedBB)
	gshare.Predictor = machine.GSharePredictor
	perfect := cacheCfg(t, machine.Dyn1, 2, 'C', machine.Perfect)
	for _, cfg := range []machine.Config{deep, gshare, perfect} {
		if p := load(cfg); p != p1 {
			t.Errorf("%s: did not share the base enlarged image", cfg)
		}
	}
	if len(c.m) != 1 {
		t.Fatalf("cache holds %d entries after engine-level variation, want 1", len(c.m))
	}

	// Codegen-relevant differences get their own entries.
	single := cacheCfg(t, machine.Dyn4, 8, 'A', machine.SingleBB)
	if p := load(single); p == p1 {
		t.Error("SingleBB shared the enlarged image")
	}
	staticA := cacheCfg(t, machine.Static, 4, 'A', machine.EnlargedBB)
	staticB := cacheCfg(t, machine.Static, 8, 'A', machine.EnlargedBB) // other issue model
	staticC := cacheCfg(t, machine.Static, 4, 'B', machine.EnlargedBB) // other hit latency
	if staticA.Mem.HitLatency == staticC.Mem.HitLatency {
		t.Fatalf("fixture mem configs A and B share hit latency %d; pick another pair", staticA.Mem.HitLatency)
	}
	pa, pb, pc := load(staticA), load(staticB), load(staticC)
	if pa == p1 || pa == pb || pa == pc || pb == pc {
		t.Error("static images with distinct issue/hit-latency were shared")
	}
	if len(c.m) != 5 {
		t.Errorf("cache holds %d entries, want 5 distinct codegen keys", len(c.m))
	}

	// A repeat of an early key is a hit even after later inserts.
	if p := load(base); p != p1 {
		t.Error("revisiting the first key reloaded instead of hitting")
	}
}

// TestImageCacheLRUEviction fills the cache past capacity with synthetic
// entries and checks that load evicts exactly the least recently used ones.
func TestImageCacheLRUEviction(t *testing.T) {
	prog, ef := cacheFixture(t)
	var c imageCache

	// One real entry so the map exists, then synthetic filler keyed by fake
	// hit latencies. Ticks are assigned in insertion order, so entry i is
	// older than entry i+1.
	real := cacheCfg(t, machine.Dyn4, 8, 'A', machine.EnlargedBB)
	img, err := c.load(prog, real, ef)
	if err != nil {
		t.Fatal(err)
	}
	fill := func(i int) imgKey { return imgKey{static: true, hitLat: 1000 + i} }
	for i := 0; len(c.m) < imageCacheCap; i++ {
		c.tick++
		c.m[fill(i)] = &imageCacheEnt{img: img, used: c.tick}
	}

	// Touch the real entry (the oldest) so the LRU victim becomes fill(0).
	if _, err := c.load(prog, real, ef); err != nil {
		t.Fatal(err)
	}

	// A miss at capacity evicts exactly one entry: the least recently used.
	single := cacheCfg(t, machine.Dyn4, 8, 'A', machine.SingleBB)
	if _, err := c.load(prog, single, ef); err != nil {
		t.Fatal(err)
	}
	if len(c.m) != imageCacheCap {
		t.Fatalf("cache holds %d entries after eviction, want %d", len(c.m), imageCacheCap)
	}
	if _, ok := c.m[fill(0)]; ok {
		t.Error("LRU victim fill(0) survived eviction")
	}
	if _, ok := c.m[imgKeyOf(real)]; !ok {
		t.Error("recently touched entry was evicted")
	}
	if _, ok := c.m[imgKeyOf(single)]; !ok {
		t.Error("newly loaded entry missing")
	}
	if _, ok := c.m[fill(1)]; !ok {
		t.Error("second-oldest filler evicted; eviction took more than the LRU entry")
	}
}

// TestImageCacheFillUnitBypass checks that FillUnit runs never share an
// image: the fill unit enlarges its program at run time, so a cached copy
// would leak one run's materialized chains into the next.
func TestImageCacheFillUnitBypass(t *testing.T) {
	prog, ef := cacheFixture(t)
	p := &Prepared{Prog: prog, EF: ef}

	fu := cacheCfg(t, machine.Dyn256, 8, 'D', machine.FillUnit)
	im1, err := p.image(fu)
	if err != nil {
		t.Fatal(err)
	}
	im2, err := p.image(fu)
	if err != nil {
		t.Fatal(err)
	}
	if im1.Prog == im2.Prog {
		t.Error("two FillUnit loads shared a program clone")
	}
	if len(p.imgs.m) != 0 {
		t.Errorf("FillUnit load populated the cache with %d entries", len(p.imgs.m))
	}

	// Cacheable modes still go through the cache on the same Prepared.
	if _, err := p.image(cacheCfg(t, machine.Dyn4, 8, 'A', machine.EnlargedBB)); err != nil {
		t.Fatal(err)
	}
	if len(p.imgs.m) != 1 {
		t.Errorf("cacheable load left %d entries, want 1", len(p.imgs.m))
	}
}
