package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"fgpsim/internal/chaos"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// This file is the sweep harness's crash-safe JSON-lines journal, exported
// so other long-running components (internal/server's request journal) can
// reuse the same durability contract instead of inventing a second format:
//
//   - one JSON value per line, appended with a single write(2) so a crash
//     tears at most the final line and concurrent appenders never interleave;
//   - the file is opened O_APPEND, so two processes (or a process restarted
//     over its own journal) extend it rather than overwrite it;
//   - every append is fsync'd before Append returns — an entry the caller
//     saw succeed survives a kill -9 or power cut;
//   - readers tolerate the torn tail: a line that fails to decode is
//     skipped, never fatal.

// Journal is an append-only, fsync'd JSON-lines file.
type Journal struct {
	mu   sync.Mutex
	f    chaos.File
	path string
	// torn is set when a write failed after possibly landing a prefix with
	// no trailing newline. Without the guard, the next successful append
	// would glue its JSON onto that fragment and BOTH lines would fail to
	// decode on replay — a durably-acknowledged entry silently lost.
	torn bool
	// poisoned is set on the first failed fsync and never cleared: once an
	// fsync fails, the kernel may have dropped the dirty pages and a later
	// successful fsync proves nothing about them (the PostgreSQL fsync-gate
	// lesson). Every subsequent Append fails with it; the only recovery is
	// reopening the journal and re-appending from state known durable.
	poisoned *PoisonedJournalError
}

// PoisonedJournalError reports a journal that failed an fsync: nothing
// appended since the last successful sync is known durable, and the Journal
// refuses further appends so no caller can mistake a post-failure entry for
// a durable one.
type PoisonedJournalError struct {
	Path  string
	Cause error
}

func (e *PoisonedJournalError) Error() string {
	return fmt.Sprintf("exp: journal %s poisoned by failed fsync: %v", e.Path, e.Cause)
}

func (e *PoisonedJournalError) Unwrap() error { return e.Cause }

// fsyncFailures counts journal fsync failures process-wide, exported on
// /metrics as journal_fsync_failures.
var fsyncFailures atomic.Int64

// JournalFsyncFailures returns the process-wide count of journal fsync
// failures.
func JournalFsyncFailures() int64 { return fsyncFailures.Load() }

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalOn(chaos.OS{}, path)
}

// OpenJournalOn is OpenJournal on an explicit disk, the seam the chaos
// harness injects filesystem faults through.
func OpenJournalOn(disk chaos.Disk, path string) (*Journal, error) {
	torn := tailIsTorn(disk, path)
	f, err := disk.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f, path: path, torn: torn}, nil
}

// tailIsTorn reports whether an existing journal ends mid-line — the
// fragment a writer killed inside write(2) leaves. A journal opened over
// such a tail starts its first append on a fresh line (the torn guard in
// Append), otherwise that append — acknowledged durable to its caller —
// would glue onto the fragment and decode as garbage on replay.
func tailIsTorn(disk chaos.Disk, path string) bool {
	f, err := disk.Open(path)
	if err != nil {
		return false // missing file: a fresh journal has no tail
	}
	defer f.Close()
	last := byte('\n')
	buf := make([]byte, 32<<10)
	for {
		n, rerr := f.Read(buf)
		if n > 0 {
			last = buf[n-1]
		}
		if rerr != nil {
			return last != '\n'
		}
	}
}

// Path returns the file the journal appends to.
func (j *Journal) Path() string { return j.path }

// Append marshals v onto one line, writes it with a single write call, and
// fsyncs before returning: on success the entry is durable. After a failed
// fsync the journal is poisoned and every Append (including this one)
// returns a *PoisonedJournalError.
func (j *Journal) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisoned != nil {
		return j.poisoned
	}
	var line []byte
	if j.torn {
		// Start on a fresh line so a previously torn fragment stays an
		// isolated undecodable line (replay skips it) instead of swallowing
		// this entry too. Replay also skips the blank line this produces
		// when the torn write in fact landed nothing.
		line = append(line, '\n')
	}
	line = append(line, data...)
	line = append(line, '\n')
	if _, err := j.f.Write(line); err != nil {
		j.torn = true
		return err
	}
	j.torn = false
	if err := j.f.Sync(); err != nil {
		fsyncFailures.Add(1)
		j.poisoned = &PoisonedJournalError{Path: j.path, Cause: err}
		return j.poisoned
	}
	return nil
}

// Close fsyncs any buffered state and closes the file. A poisoned journal
// closes without syncing (there is nothing left to promise) and returns
// its poison error. Close after Close is an error from the OS, as usual.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisoned != nil {
		j.f.Close()
		return j.poisoned
	}
	if err := j.f.Sync(); err != nil {
		fsyncFailures.Add(1)
		j.poisoned = &PoisonedJournalError{Path: j.path, Cause: err}
		j.f.Close()
		return j.poisoned
	}
	return j.f.Close()
}

// ReplayJournal streams a journal's lines to fn in file order. A missing
// file is an empty journal. Blank lines are skipped; fn returning an error
// skips that line (it is how the torn tail of a killed writer, or any
// malformed line, is tolerated) — it never aborts the replay.
func ReplayJournal(path string, fn func(line []byte) error) error {
	return ReplayJournalOn(chaos.OS{}, path, fn)
}

// ReplayJournalOn is ReplayJournal on an explicit disk.
func ReplayJournalOn(disk chaos.Disk, path string, fn func(line []byte) error) error {
	f, err := disk.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		fn(line) // decode errors mean a torn/corrupt line: skip it
	}
	return sc.Err()
}

// journalEntry is one completed cell, serialized as a single JSON line.
//
// Fp and Attempt exist for multi-writer journals (the distributed fabric's
// merged cell journal): when two workers race on a requeued cell, both of
// their records land in the journal in arrival order, and arrival order is
// not deterministic. The dedup in ReadJournal therefore resolves duplicate
// keys by (Attempt, Fp) instead of file order — see cellWinner.supersededBy.
// Single-writer journals (a plain sweep's resume journal) omit both fields
// and keep the historical last-write-wins behavior.
type journalEntry struct {
	Key   Key        `json:"key"`
	Stats *stats.Run `json:"stats"`
	// Fp is the hex StatsFingerprint of Stats (empty on legacy records).
	Fp string `json:"fp,omitempty"`
	// Attempt is the assignment ordinal under which the cell ran: the
	// fabric coordinator increments it on every requeue or steal, so a
	// higher attempt is by construction the later decision.
	Attempt int `json:"attempt,omitempty"`
	// Digest is the record's content digest (entryDigest: CRC32-C + length
	// over the record with this field cleared). Empty on legacy records.
	// Verified on every replay; a mismatch rejects the record.
	Digest string `json:"digest,omitempty"`
}

// appendResult stamps the record's content digest and appends it. All cell
// records — fabric and plain sweeps alike — go through here, so every
// journal written by this version is scrub- and merge-verifiable.
func (j *Journal) appendResult(e journalEntry) error {
	e.Digest = entryDigest(e)
	return j.Append(e)
}

// AppendCell journals one completed cell under an explicit attempt ordinal,
// stamping the record with the stats' content fingerprint and a content
// digest. This is the multi-writer append used by the fabric coordinator;
// plain sweeps append records without the attempt/fingerprint stamp and
// rely on last-write-wins.
func (j *Journal) AppendCell(k Key, s *stats.Run, attempt int) error {
	return j.appendResult(journalEntry{Key: k, Stats: s, Fp: fmt.Sprintf("%016x", StatsFingerprint(s)), Attempt: attempt})
}

// StatsFingerprint is a content hash of one cell result: FNV-1a over the
// canonical (encoding/json) serialization. Two byte-identical results —
// which is what a deterministic simulator produces for the same cell no
// matter which worker ran it — always fingerprint equal, so the merge
// dedup's fingerprint comparison only ever breaks ties between records
// that genuinely differ.
func StatsFingerprint(s *stats.Run) uint64 {
	data, err := json.Marshal(s)
	if err != nil {
		return 0
	}
	h := specFNV(0xcbf29ce484222325)
	h.blob(data)
	return uint64(h)
}

// journalSpec is a journal's identity record: the hex form of the sweep's
// SpecHash, written as the first line so a resume can tell "this journal
// belongs to a different sweep" from "this cell has not completed yet".
// Hex, not a JSON number — a uint64 does not survive float64 decoding.
type journalSpec struct {
	Spec string `json:"spec"`
}

// StaleJournalError reports a journal written under a different sweep
// specification than the one resuming from it. Replaying it would seed the
// grid with cells from other programs, inputs, or configurations, so the
// resume refuses instead.
type StaleJournalError struct {
	Path string
	Want uint64 // spec of the sweep trying to resume
	Got  uint64 // spec recorded in the journal
}

func (e *StaleJournalError) Error() string {
	return fmt.Sprintf("exp: journal %s was written for a different sweep (spec %016x, want %016x)",
		e.Path, e.Got, e.Want)
}

// SpecHash identifies a sweep's specification: every prepared benchmark —
// name, program fingerprint, measurement inputs — and every configuration
// field that changes timed execution (the same extension fields
// loader.Image.Fingerprint covers). Journal entries and cell snapshots are
// only ever replayed into a sweep with the identical hash.
func SpecHash(prepared []*Prepared, cfgs []machine.Config) uint64 {
	h := specFNV(0xcbf29ce484222325)
	h.u64(uint64(len(prepared)))
	for _, p := range prepared {
		h.str(p.Bench.Name)
		h.u64(loader.ProgramFingerprint(p.Prog))
		h.blob(p.In0)
		h.blob(p.In1)
	}
	h.u64(uint64(len(cfgs)))
	for _, cfg := range cfgs {
		h.str(cfg.String())
		h.u64(uint64(int64(cfg.BTBEntries)))
		h.u64(uint64(int64(cfg.GShareBits)))
		h.u64(uint64(int64(cfg.WindowOverride)))
		h.byte(byte(cfg.Predictor))
		if cfg.ConservativeMem {
			h.byte(1)
		} else {
			h.byte(0)
		}
	}
	return uint64(h)
}

type specFNV uint64

func (h *specFNV) byte(b byte) { *h = (*h ^ specFNV(b)) * 0x100000001b3 }
func (h *specFNV) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}
func (h *specFNV) blob(b []byte) {
	h.u64(uint64(len(b)))
	for _, c := range b {
		h.byte(c)
	}
}
func (h *specFNV) str(s string) { h.blob([]byte(s)) }

// CheckJournalSpec verifies that a journal's spec record (when present)
// matches spec, returning a *StaleJournalError on mismatch. found reports
// whether any spec record exists: a missing or empty journal has none and
// the caller should write one.
func CheckJournalSpec(path string, spec uint64) (found bool, err error) {
	return CheckJournalSpecOn(chaos.OS{}, path, spec)
}

// CheckJournalSpecOn is CheckJournalSpec on an explicit disk.
func CheckJournalSpecOn(disk chaos.Disk, path string, spec uint64) (found bool, err error) {
	var got uint64
	rerr := ReplayJournalOn(disk, path, func(line []byte) error {
		if found {
			return nil
		}
		var js journalSpec
		if jerr := json.Unmarshal(line, &js); jerr != nil || js.Spec == "" {
			return nil
		}
		if _, serr := fmt.Sscanf(js.Spec, "%x", &got); serr != nil {
			return nil // torn/corrupt spec line: ignore like any other
		}
		found = true
		return nil
	})
	if rerr != nil {
		return false, rerr
	}
	if found && got != spec {
		return true, &StaleJournalError{Path: path, Want: spec, Got: got}
	}
	return found, nil
}

// WriteSpec appends the sweep's spec record to the journal.
func (j *Journal) WriteSpec(spec uint64) error {
	return j.Append(journalSpec{Spec: fmt.Sprintf("%016x", spec)})
}

// cellWinner is the currently-winning record for one key during a replay.
type cellWinner struct {
	stats   *stats.Run
	attempt int
	fp      uint64
}

// supersededBy reports whether a newly replayed record supersedes the
// current winner. The ordering is deterministic with respect to record *content*,
// not file order: a higher attempt ordinal wins (it is the later
// scheduling decision), and between equal attempts the larger fingerprint
// wins. Only records indistinguishable on both axes — legacy unstamped
// lines, or byte-identical results — fall back to last-write-wins, where
// file order is immaterial precisely because the payloads are equal (or,
// for legacy single-writer journals, where file order IS the intended
// order).
func (w cellWinner) supersededBy(attempt int, fp uint64) bool {
	if attempt != w.attempt {
		return attempt > w.attempt
	}
	if fp != w.fp {
		return fp > w.fp
	}
	return true // equal on both axes: last write wins
}

// Supersedes reports whether a record stamped (newAttempt, newFp) replaces
// one stamped (curAttempt, curFp) under the journal's deterministic dedup
// order (cellWinner.supersededBy). Exported for the fabric coordinator,
// which must apply the same rule to results arriving live over HTTP that
// ReadJournal applies to records replayed from disk — otherwise a crash
// and restart could settle a raced cell differently than the live process
// did.
func Supersedes(curAttempt int, curFp uint64, newAttempt int, newFp uint64) bool {
	return cellWinner{attempt: curAttempt, fp: curFp}.supersededBy(newAttempt, newFp)
}

// replayCells folds one journal's entries into the winners map under the
// deterministic dedup order.
func replayCells(disk chaos.Disk, path string, m map[Key]cellWinner) error {
	return ReplayJournalOn(disk, path, func(line []byte) error {
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.Stats == nil {
			return fmt.Errorf("exp: journal line without stats")
		}
		// Digest verification happens before BlockSizes normalization: the
		// digest was computed over the record as written, and a record whose
		// BlockSizes decoded as nil was written with null — normalizing
		// first would change the canonical bytes. Legacy records (no digest)
		// pass unverified; this is the tolerant merge.
		if got := rawEntryDigest(line, e); e.Digest != "" && got != e.Digest {
			return &IntegrityError{Path: path, Key: e.Key, Hop: "merge", Want: e.Digest, Got: got}
		}
		if e.Stats.BlockSizes == nil {
			e.Stats.BlockSizes = make(map[int]int64)
		}
		var fp uint64
		if e.Fp != "" {
			if _, err := fmt.Sscanf(e.Fp, "%x", &fp); err != nil {
				fp = 0 // corrupt stamp: treat as legacy
			}
		}
		cur, ok := m[e.Key]
		if !ok || cur.supersededBy(e.Attempt, fp) {
			m[e.Key] = cellWinner{stats: e.Stats, attempt: e.Attempt, fp: fp}
		}
		return nil
	})
}

// ReadJournal loads the completed cells of a sweep journal, the resume
// helper behind GridOptions.Journal. Repeated lines for the same Key are
// deduplicated deterministically: records stamped with an attempt ordinal
// and fingerprint (AppendCell — the fabric's multi-writer merge case)
// resolve by (attempt, fingerprint) regardless of the order their writers
// raced into the file, and unstamped legacy records keep the historical
// last-write-wins behavior (the journal is append-only, so for a single
// writer the latest line is the most recent completion).
func ReadJournal(path string) (map[Key]*stats.Run, error) {
	return MergeJournals(path)
}

// ReadJournalOn is ReadJournal on an explicit disk.
func ReadJournalOn(disk chaos.Disk, path string) (map[Key]*stats.Run, error) {
	return MergeJournalsOn(disk, path)
}

// MergeJournals reads several cell journals — the shape a sharded sweep
// produces, one journal per writer or one journal with interleaved writers
// — into a single result set under the same deterministic dedup as
// ReadJournal. The result is independent of both the order records landed
// within each file and the order the paths are given, provided duplicate
// records are distinguishable (stamped with attempt/fingerprint); the
// merged set is therefore byte-identical to what a single-node run of the
// same sweep would have journaled.
func MergeJournals(paths ...string) (map[Key]*stats.Run, error) {
	return MergeJournalsOn(chaos.OS{}, paths...)
}

// MergeJournalsOn is MergeJournals on an explicit disk.
func MergeJournalsOn(disk chaos.Disk, paths ...string) (map[Key]*stats.Run, error) {
	recs, err := MergeJournalRecordsOn(disk, paths...)
	if err != nil {
		return nil, err
	}
	m := make(map[Key]*stats.Run, len(recs))
	for k, r := range recs {
		m[k] = r.Stats
	}
	return m, nil
}

// CellRecord is one merged journal winner together with its dedup stamp,
// for callers (the fabric coordinator's restart recovery) that must keep
// deduplicating against results that arrive after the replay.
type CellRecord struct {
	Stats   *stats.Run
	Attempt int
	Fp      uint64
}

// MergeJournalRecords is MergeJournals keeping each winner's stamp.
func MergeJournalRecords(paths ...string) (map[Key]CellRecord, error) {
	return MergeJournalRecordsOn(chaos.OS{}, paths...)
}

// MergeJournalRecordsOn is MergeJournalRecords on an explicit disk.
func MergeJournalRecordsOn(disk chaos.Disk, paths ...string) (map[Key]CellRecord, error) {
	winners := make(map[Key]cellWinner)
	for _, path := range paths {
		if err := replayCells(disk, path, winners); err != nil {
			return nil, err
		}
	}
	m := make(map[Key]CellRecord, len(winners))
	for k, w := range winners {
		m[k] = CellRecord{Stats: w.stats, Attempt: w.attempt, Fp: w.fp}
	}
	return m, nil
}
