package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"fgpsim/internal/stats"
)

// This file is the sweep harness's crash-safe JSON-lines journal, exported
// so other long-running components (internal/server's request journal) can
// reuse the same durability contract instead of inventing a second format:
//
//   - one JSON value per line, appended with a single write(2) so a crash
//     tears at most the final line and concurrent appenders never interleave;
//   - the file is opened O_APPEND, so two processes (or a process restarted
//     over its own journal) extend it rather than overwrite it;
//   - every append is fsync'd before Append returns — an entry the caller
//     saw succeed survives a kill -9 or power cut;
//   - readers tolerate the torn tail: a line that fails to decode is
//     skipped, never fatal.

// Journal is an append-only, fsync'd JSON-lines file.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append marshals v onto one line, writes it with a single write call, and
// fsyncs before returning: on success the entry is durable.
func (j *Journal) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close fsyncs any buffered state and closes the file. Close after Close is
// an error from the OS, as usual.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReplayJournal streams a journal's lines to fn in file order. A missing
// file is an empty journal. Blank lines are skipped; fn returning an error
// skips that line (it is how the torn tail of a killed writer, or any
// malformed line, is tolerated) — it never aborts the replay.
func ReplayJournal(path string, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		fn(line) // decode errors mean a torn/corrupt line: skip it
	}
	return sc.Err()
}

// journalEntry is one completed cell, serialized as a single JSON line.
type journalEntry struct {
	Key   Key        `json:"key"`
	Stats *stats.Run `json:"stats"`
}

// ReadJournal loads the completed cells of a sweep journal, the resume
// helper behind GridOptions.Journal. Repeated lines for the same Key are
// deduplicated last-write-wins: the journal is append-only, so the latest
// line is the most recent completion (a cell re-run after a resume, or a
// journal that was replayed/concatenated twice) and deliberately replaces
// earlier ones.
func ReadJournal(path string) (map[Key]*stats.Run, error) {
	m := make(map[Key]*stats.Run)
	err := ReplayJournal(path, func(line []byte) error {
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.Stats == nil {
			return fmt.Errorf("exp: journal line without stats")
		}
		if e.Stats.BlockSizes == nil {
			e.Stats.BlockSizes = make(map[int]int64)
		}
		// Last write wins, explicitly: overwrite any earlier entry for the
		// same key rather than relying on map-insert side effects.
		m[e.Key] = e.Stats
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
