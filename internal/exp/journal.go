package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"

	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// This file is the sweep harness's crash-safe JSON-lines journal, exported
// so other long-running components (internal/server's request journal) can
// reuse the same durability contract instead of inventing a second format:
//
//   - one JSON value per line, appended with a single write(2) so a crash
//     tears at most the final line and concurrent appenders never interleave;
//   - the file is opened O_APPEND, so two processes (or a process restarted
//     over its own journal) extend it rather than overwrite it;
//   - every append is fsync'd before Append returns — an entry the caller
//     saw succeed survives a kill -9 or power cut;
//   - readers tolerate the torn tail: a line that fails to decode is
//     skipped, never fatal.

// Journal is an append-only, fsync'd JSON-lines file.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) a journal for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append marshals v onto one line, writes it with a single write call, and
// fsyncs before returning: on success the entry is durable.
func (j *Journal) Append(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

// Close fsyncs any buffered state and closes the file. Close after Close is
// an error from the OS, as usual.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.f.Sync(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// ReplayJournal streams a journal's lines to fn in file order. A missing
// file is an empty journal. Blank lines are skipped; fn returning an error
// skips that line (it is how the torn tail of a killed writer, or any
// malformed line, is tolerated) — it never aborts the replay.
func ReplayJournal(path string, fn func(line []byte) error) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		fn(line) // decode errors mean a torn/corrupt line: skip it
	}
	return sc.Err()
}

// journalEntry is one completed cell, serialized as a single JSON line.
type journalEntry struct {
	Key   Key        `json:"key"`
	Stats *stats.Run `json:"stats"`
}

// journalSpec is a journal's identity record: the hex form of the sweep's
// SpecHash, written as the first line so a resume can tell "this journal
// belongs to a different sweep" from "this cell has not completed yet".
// Hex, not a JSON number — a uint64 does not survive float64 decoding.
type journalSpec struct {
	Spec string `json:"spec"`
}

// StaleJournalError reports a journal written under a different sweep
// specification than the one resuming from it. Replaying it would seed the
// grid with cells from other programs, inputs, or configurations, so the
// resume refuses instead.
type StaleJournalError struct {
	Path string
	Want uint64 // spec of the sweep trying to resume
	Got  uint64 // spec recorded in the journal
}

func (e *StaleJournalError) Error() string {
	return fmt.Sprintf("exp: journal %s was written for a different sweep (spec %016x, want %016x)",
		e.Path, e.Got, e.Want)
}

// SpecHash identifies a sweep's specification: every prepared benchmark —
// name, program fingerprint, measurement inputs — and every configuration
// field that changes timed execution (the same extension fields
// loader.Image.Fingerprint covers). Journal entries and cell snapshots are
// only ever replayed into a sweep with the identical hash.
func SpecHash(prepared []*Prepared, cfgs []machine.Config) uint64 {
	h := specFNV(0xcbf29ce484222325)
	h.u64(uint64(len(prepared)))
	for _, p := range prepared {
		h.str(p.Bench.Name)
		h.u64(loader.ProgramFingerprint(p.Prog))
		h.blob(p.In0)
		h.blob(p.In1)
	}
	h.u64(uint64(len(cfgs)))
	for _, cfg := range cfgs {
		h.str(cfg.String())
		h.u64(uint64(int64(cfg.BTBEntries)))
		h.u64(uint64(int64(cfg.GShareBits)))
		h.u64(uint64(int64(cfg.WindowOverride)))
		h.byte(byte(cfg.Predictor))
		if cfg.ConservativeMem {
			h.byte(1)
		} else {
			h.byte(0)
		}
	}
	return uint64(h)
}

type specFNV uint64

func (h *specFNV) byte(b byte) { *h = (*h ^ specFNV(b)) * 0x100000001b3 }
func (h *specFNV) u64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}
func (h *specFNV) blob(b []byte) {
	h.u64(uint64(len(b)))
	for _, c := range b {
		h.byte(c)
	}
}
func (h *specFNV) str(s string) { h.blob([]byte(s)) }

// CheckJournalSpec verifies that a journal's spec record (when present)
// matches spec, returning a *StaleJournalError on mismatch. found reports
// whether any spec record exists: a missing or empty journal has none and
// the caller should write one.
func CheckJournalSpec(path string, spec uint64) (found bool, err error) {
	var got uint64
	rerr := ReplayJournal(path, func(line []byte) error {
		if found {
			return nil
		}
		var js journalSpec
		if jerr := json.Unmarshal(line, &js); jerr != nil || js.Spec == "" {
			return nil
		}
		if _, serr := fmt.Sscanf(js.Spec, "%x", &got); serr != nil {
			return nil // torn/corrupt spec line: ignore like any other
		}
		found = true
		return nil
	})
	if rerr != nil {
		return false, rerr
	}
	if found && got != spec {
		return true, &StaleJournalError{Path: path, Want: spec, Got: got}
	}
	return found, nil
}

// WriteSpec appends the sweep's spec record to the journal.
func (j *Journal) WriteSpec(spec uint64) error {
	return j.Append(journalSpec{Spec: fmt.Sprintf("%016x", spec)})
}

// ReadJournal loads the completed cells of a sweep journal, the resume
// helper behind GridOptions.Journal. Repeated lines for the same Key are
// deduplicated last-write-wins: the journal is append-only, so the latest
// line is the most recent completion (a cell re-run after a resume, or a
// journal that was replayed/concatenated twice) and deliberately replaces
// earlier ones.
func ReadJournal(path string) (map[Key]*stats.Run, error) {
	m := make(map[Key]*stats.Run)
	err := ReplayJournal(path, func(line []byte) error {
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		if e.Stats == nil {
			return fmt.Errorf("exp: journal line without stats")
		}
		if e.Stats.BlockSizes == nil {
			e.Stats.BlockSizes = make(map[int]int64)
		}
		// Last write wins, explicitly: overwrite any earlier entry for the
		// same key rather than relying on map-insert side effects.
		m[e.Key] = e.Stats
		return nil
	})
	if err != nil {
		return nil, err
	}
	return m, nil
}
