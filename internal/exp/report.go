package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"fgpsim/internal/machine"
)

// WriteReport renders a markdown report of a measured figure sweep: every
// figure table plus an automated check of the paper's headline claims
// against the measured numbers. cmd/figures -report writes it; it is how
// EXPERIMENTS.md-style documents are regenerated from fresh runs.
func (r *Results) WriteReport(w io.Writer, benches []string) error {
	var b strings.Builder
	b.WriteString("# Measured reproduction report\n\n")
	fmt.Fprintf(&b, "Benchmarks: %s. Metric: work-normalized nodes/cycle\n", strings.Join(benches, ", "))
	b.WriteString("(original-program nodes / cycles), geometric mean across benchmarks.\n\n")

	for _, fig := range []struct {
		title  string
		render func(*Results, []string) string
	}{
		{"Figure 2", Figure2},
		{"Figure 3", Figure3},
		{"Figure 4", Figure4},
		{"Figure 5", Figure5},
		{"Figure 6", Figure6},
	} {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", fig.title, fig.render(r, benches))
	}

	b.WriteString("## Claim checks\n\n")
	for _, c := range r.CheckClaims(benches) {
		mark := "PASS"
		if !c.Holds {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "- [%s] %s — %s\n", mark, c.Claim, c.Detail)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ClaimResult is one automated check of a paper claim.
type ClaimResult struct {
	Claim  string
	Detail string
	Holds  bool
}

// CheckClaims evaluates the paper's qualitative claims against the
// measured figure data. NaN cells (missing runs) fail their claims.
func (r *Results) CheckClaims(benches []string) []ClaimResult {
	at := func(c Curve, issue int, mem byte) float64 {
		return r.GeoMeanNPC(benches, MustConfigFor(c, issue, mem))
	}
	red := func(c Curve, issue int, mem byte) float64 {
		return r.MeanRedundancy(benches, MustConfigFor(c, issue, mem))
	}
	var out []ClaimResult
	add := func(claim string, holds bool, detail string) {
		out = append(out, ClaimResult{Claim: claim, Detail: detail, Holds: holds})
	}
	ok := func(vs ...float64) bool {
		for _, v := range vs {
			if math.IsNaN(v) {
				return false
			}
		}
		return true
	}

	staticS := Curve{machine.Static, machine.SingleBB}
	dyn1S := Curve{machine.Dyn1, machine.SingleBB}
	dyn4S := Curve{machine.Dyn4, machine.SingleBB}
	dyn1E := Curve{machine.Dyn1, machine.EnlargedBB}
	dyn4E := Curve{machine.Dyn4, machine.EnlargedBB}
	dyn256E := Curve{machine.Dyn256, machine.EnlargedBB}
	dyn256P := Curve{machine.Dyn256, machine.Perfect}

	// Narrow words: little variation.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, c := range Curves() {
		v := at(c, 2, 'A')
		if math.IsNaN(v) {
			continue
		}
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	add("narrow words show little variation among schemes",
		hi > 0 && hi/lo < 1.6,
		fmt.Sprintf("issue model 2 spread %.2f-%.2f (%.2fx)", lo, hi, hi/lo))

	// Wide words: large variation.
	wideLo, wideHi := at(staticS, 8, 'A'), at(dyn256P, 8, 'A')
	add("wide words show large variation",
		ok(wideLo, wideHi) && wideHi/wideLo > 2,
		fmt.Sprintf("issue model 8: %.2f vs %.2f", wideLo, wideHi))

	// Window 1 does little better than static.
	s, w1 := at(staticS, 8, 'A'), at(dyn1S, 8, 'A')
	add("window 1 does little better than static",
		ok(s, w1) && w1 >= s*0.95 && w1 <= s*1.5,
		fmt.Sprintf("static %.2f, dyn-w1 %.2f", s, w1))

	// Window 4 close to window 256.
	w4, w256 := at(dyn4E, 8, 'A'), at(dyn256E, 8, 'A')
	add("window 4 comes close to window 256 (enlarged)",
		ok(w4, w256) && w4 >= w256*0.9,
		fmt.Sprintf("w4 %.2f vs w256 %.2f", w4, w256))

	// Enlargement helps every discipline at wide issue.
	helps := true
	detail := ""
	for _, d := range machine.Disciplines {
		sv := at(Curve{d, machine.SingleBB}, 8, 'A')
		ev := at(Curve{d, machine.EnlargedBB}, 8, 'A')
		if !ok(sv, ev) || ev <= sv {
			helps = false
		}
		detail += fmt.Sprintf("%s %.2f->%.2f ", d, sv, ev)
	}
	add("enlargement benefits every discipline at issue 8", helps, strings.TrimSpace(detail))

	// Enlarged window-1 below single window-4.
	e1, s4 := at(dyn1E, 8, 'A'), at(dyn4S, 8, 'A')
	add("enlarged window-1 stays below single window-4",
		ok(e1, s4) && e1 < s4,
		fmt.Sprintf("enlarged w1 %.2f vs single w4 %.2f", e1, s4))

	// Latency tolerance: percentage drop A->C similar for top and bottom.
	topA, topC := at(dyn256E, 8, 'A'), at(dyn256E, 8, 'C')
	botA, botC := at(staticS, 8, 'A'), at(staticS, 8, 'C')
	if ok(topA, topC, botA, botC) {
		dropTop := 1 - topC/topA
		dropBot := 1 - botC/botA
		add("memory-latency slopes are similar percentage-wise",
			math.Abs(dropTop-dropBot) < 0.15,
			fmt.Sprintf("A->C drop: top curve %.0f%%, bottom curve %.0f%%", dropTop*100, dropBot*100))
	} else {
		add("memory-latency slopes are similar percentage-wise", false, "missing data")
	}

	// Redundancy ordering: deep speculation discards more.
	r4, r256 := red(dyn4E, 8, 'A'), red(dyn256E, 8, 'A')
	add("deeper windows discard more work at similar performance",
		ok(r4, r256) && r256 > r4 && ok(w4, w256) && w4 >= w256*0.9,
		fmt.Sprintf("redundancy w4 %.2f vs w256 %.2f at %.2f vs %.2f nodes/cycle", r4, r256, w4, w256))

	// Speedup band: best realistic machine over sequential static.
	seq := at(staticS, 1, 'A')
	best := at(dyn256E, 8, 'A')
	add("speedups of 3-6x on realistic processors",
		ok(seq, best) && best/seq >= 3 && best/seq <= 7,
		fmt.Sprintf("%.1fx over the sequential static machine", best/seq))

	return out
}
