package exp

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"fgpsim/internal/chaos"
	"fgpsim/internal/stats"
)

// This file is the sweep fabric's end-to-end integrity layer (DESIGN.md
// §17). The simulator is deterministic — the same cell always produces
// byte-identical stats — so every hop a result crosses (worker → ship RPC
// → journal append → merge → served status) can carry a content digest of
// the canonical encoding and verify it cheaply. A mismatch anywhere is a
// *IntegrityError: the record is rejected and the cell re-runs, rather
// than a flipped bit silently poisoning a 10k-cell merged sweep.
//
// The digest is CRC32-C over the canonical (encoding/json) serialization,
// suffixed with the byte length. CRC32-C is not cryptographic — the threat
// model is bitrot, torn writes, and buggy workers, not adversaries — but
// it is cheap enough to verify on every journal replay, and the sampled
// re-execution audit (coordinator.go) backstops it with full byte
// comparison against an independent run.

// castagnoli is the CRC32-C table, shared by every digest computation.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// contentDigest is the digest of a canonical encoding: "crc32c:length".
// Digests are compared as opaque strings, never parsed.
func contentDigest(data []byte) string {
	return fmt.Sprintf("%08x:%d", crc32.Checksum(data, castagnoli), len(data))
}

// DigestStats is the content digest of one cell result over its canonical
// JSON encoding. encoding/json is deterministic here — struct field order
// is fixed and map keys are sorted — so two byte-identical results always
// digest equal, and (because the simulator is deterministic) so do two
// honest executions of the same cell on different workers.
func DigestStats(s *stats.Run) string {
	data, err := json.Marshal(s)
	if err != nil {
		return ""
	}
	return contentDigest(data)
}

// entryDigest is the content digest of a journal record: the entry's
// canonical encoding with the Digest field itself cleared. It covers the
// key, stats, fingerprint, and attempt together, so a flipped bit in any
// of them — not just the payload — fails verification.
func entryDigest(e journalEntry) string {
	e.Digest = ""
	data, err := json.Marshal(e)
	if err != nil {
		return ""
	}
	return contentDigest(data)
}

// rawEntryDigest recomputes a record's digest over the exact bytes that
// were appended: Digest is the entry's last struct field and omitempty, so
// the line as written is the digestless marshal with `,"digest":"…"`
// spliced in before the closing brace, and stripping that suffix recovers
// the digested bytes verbatim. Verifying the raw bytes (rather than a
// canonical re-marshal of the decoded entry) closes the one hole a
// re-marshal leaves: a flipped bit in the field NAME of a zero-valued
// field decodes to the same entry — unknown field ignored, zero default
// restored — and would re-encode to a matching canonical form. Lines not
// in the writer's append shape (foreign field order) fall back to the
// canonical re-marshal.
func rawEntryDigest(line []byte, e journalEntry) string {
	suffix := []byte(`,"digest":"` + e.Digest + `"}`)
	if bytes.HasSuffix(line, suffix) {
		raw := make([]byte, 0, len(line)-len(suffix)+1)
		raw = append(raw, line[:len(line)-len(suffix)]...)
		raw = append(raw, '}')
		return contentDigest(raw)
	}
	return entryDigest(e)
}

// IntegrityError reports a content-digest mismatch (or a record too
// damaged to carry one) at some hop of a result's life: ship RPC, journal
// append, merge replay, or scrub. It is a rejection of one record, never
// of the sweep — the affected cell simply is not settled by that record
// and re-runs.
type IntegrityError struct {
	Path   string // journal file, when the hop is on disk
	Key    Key    // the affected cell, when the record was parseable
	Hop    string // where verification failed: "ship", "append", "merge", "scrub"
	Want   string // digest the record claims
	Got    string // digest the bytes actually have
	Detail string // what went wrong when there is no want/got pair
}

func (e *IntegrityError) Error() string {
	where := e.Hop
	if e.Path != "" {
		where += " " + e.Path
	}
	if e.Detail != "" {
		return fmt.Sprintf("exp: integrity violation at %s: %s", where, e.Detail)
	}
	return fmt.Sprintf("exp: integrity violation at %s: digest %s, want %s", where, e.Got, e.Want)
}

// verifyCellLine classifies one journal line under the strict digest
// policy: every record must carry a digest and the digest must match.
// Returns (entry, nil) for a verified cell record, (nil, nil) for lines
// that are legitimately not cell records — the journal's spec line, a
// blank line, or an unparseable *final* line (the torn tail a killed
// writer leaves, tolerated by the durability contract) — and (nil, err)
// for anything else.
func verifyCellLine(path string, line []byte, final bool) (*journalEntry, *IntegrityError) {
	if len(line) == 0 {
		return nil, nil
	}
	var e journalEntry
	if err := json.Unmarshal(line, &e); err != nil {
		if final {
			return nil, nil // torn tail: tolerated, never an integrity verdict
		}
		return nil, &IntegrityError{Path: path, Hop: "merge", Detail: fmt.Sprintf("undecodable mid-file record: %v", err)}
	}
	if e.Stats == nil && e.Digest == "" {
		// Not shaped like a cell record at all: the spec line decodes this
		// way, and so does a record whose field names were corrupted.
		var js journalSpec
		if json.Unmarshal(line, &js) == nil && js.Spec != "" {
			return nil, nil
		}
		return nil, &IntegrityError{Path: path, Hop: "merge", Detail: "record without stats or digest"}
	}
	if e.Stats == nil {
		return nil, &IntegrityError{Path: path, Key: e.Key, Hop: "merge", Detail: "digested record without stats"}
	}
	if e.Digest == "" {
		return nil, &IntegrityError{Path: path, Key: e.Key, Hop: "merge", Detail: "record without digest"}
	}
	if got := rawEntryDigest(line, e); got != e.Digest {
		return nil, &IntegrityError{Path: path, Key: e.Key, Hop: "merge", Want: e.Digest, Got: got}
	}
	return &e, nil
}

// MergeJournalRecordsVerifiedOn is MergeJournalRecordsOn under the strict
// digest policy: every cell record must carry a matching content digest.
// Records that fail verification are rejected — reported through onErr
// (which may be nil) and excluded from the merge, so the affected cells
// appear unfinished and requeue — but never abort the merge. A missing
// file is an empty journal; an unparseable final line is the usual torn
// tail and is tolerated silently.
//
// This is the fabric coordinator's recovery path. The tolerant merge
// (MergeJournalRecordsOn) remains for single-writer resume journals,
// which predate digests; even there, replayCells rejects a record whose
// digest is present but wrong.
func MergeJournalRecordsVerifiedOn(disk chaos.Disk, onErr func(*IntegrityError), paths ...string) (map[Key]CellRecord, error) {
	winners := make(map[Key]cellWinner)
	for _, path := range paths {
		if err := verifyCells(disk, path, winners, onErr); err != nil {
			return nil, err
		}
	}
	m := make(map[Key]CellRecord, len(winners))
	for k, w := range winners {
		m[k] = CellRecord{Stats: w.stats, Attempt: w.attempt, Fp: w.fp}
	}
	return m, nil
}

// verifyCells folds one journal into the winners map under the strict
// digest policy, reporting rejected records through onErr.
func verifyCells(disk chaos.Disk, path string, m map[Key]cellWinner, onErr func(*IntegrityError)) error {
	data, err := disk.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		// A complete journal ends with '\n', so Split leaves an empty last
		// element; a non-empty last element IS the torn tail.
		final := i == len(lines)-1
		e, ierr := verifyCellLine(path, bytes.TrimSpace(line), final)
		if ierr != nil {
			if onErr != nil {
				onErr(ierr)
			}
			continue
		}
		if e == nil {
			continue
		}
		if e.Stats.BlockSizes == nil {
			e.Stats.BlockSizes = make(map[int]int64)
		}
		var fp uint64
		if e.Fp != "" {
			if _, err := fmt.Sscanf(e.Fp, "%x", &fp); err != nil {
				fp = 0
			}
		}
		cur, ok := m[e.Key]
		if !ok || cur.supersededBy(e.Attempt, fp) {
			m[e.Key] = cellWinner{stats: e.Stats, attempt: e.Attempt, fp: fp}
		}
	}
	return nil
}

// ScrubJournalOn re-walks one cell journal under the strict digest policy
// and reports every record that fails verification, without mutating
// anything — journals are append-only and shared with live writers, and a
// corrupt record is already harmless (the verified merge rejects it), so
// the scrubber's job here is detection, not repair. total counts the
// verified cell records. The read goes through disk.ReadFile so seeded
// bitrot faults (chaos.BitrotRead) reach it.
func ScrubJournalOn(disk chaos.Disk, path string) (total int, bad []*IntegrityError, err error) {
	data, err := disk.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	for i, line := range lines {
		final := i == len(lines)-1
		e, ierr := verifyCellLine(path, bytes.TrimSpace(line), final)
		if ierr != nil {
			ierr.Hop = "scrub"
			bad = append(bad, ierr)
			continue
		}
		if e != nil {
			total++
		}
	}
	return total, bad, nil
}
