// Package exp is the experiment harness: it prepares each benchmark the way
// the paper does (profile on input set 1, build the enlargement file,
// record the perfect-prediction trace on input set 2), runs machine
// configurations in parallel, verifies every simulated run against the
// functional interpreter, and extracts the data series behind each of the
// paper's figures.
package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"fgpsim/internal/bench"
	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// Prepared is one benchmark made ready for measurement runs.
type Prepared struct {
	Bench *bench.Benchmark
	Prog  *ir.Program

	Profile *interp.Profile
	EF      *enlarge.File
	Hints   map[ir.BlockID]bool

	// Measurement input (set 2) and its reference run.
	In0, In1  []byte
	Trace     []ir.BlockID
	RefOutput []byte
	RefNodes  int64

	// imgs memoizes translating-loader results across runs (imgcache.go).
	imgs imageCache
}

// Prepare runs the paper's two-input methodology for one benchmark.
func Prepare(b *bench.Benchmark, eo enlarge.Options) (*Prepared, error) {
	prog, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", b.Name, err)
	}
	p := &Prepared{Bench: b, Prog: prog}

	// Profiling run on input set 1.
	p1in0, p1in1 := b.Inputs(1)
	p.Profile = interp.NewProfile()
	if _, err := interp.Run(prog, p1in0, p1in1, interp.Options{Profile: p.Profile, MaxNodes: 200_000_000}); err != nil {
		return nil, fmt.Errorf("exp: %s profile run: %w", b.Name, err)
	}
	p.EF = enlarge.Build(prog, p.Profile, eo)
	p.Hints = branch.HintsFromProfile(p.Profile.Taken, p.Profile.NotTaken)

	// Reference + trace run on input set 2.
	p.In0, p.In1 = b.Inputs(2)
	ref, err := interp.Run(prog, p.In0, p.In1, interp.Options{RecordTrace: true, MaxNodes: 200_000_000})
	if err != nil {
		return nil, fmt.Errorf("exp: %s reference run: %w", b.Name, err)
	}
	p.Trace = ref.Trace
	p.RefOutput = ref.Output
	p.RefNodes = ref.RetiredNodes
	return p, nil
}

// Run simulates one machine configuration and verifies its output.
func (p *Prepared) Run(cfg machine.Config) (*stats.Run, error) {
	return p.RunContext(context.Background(), cfg, core.Limits{})
}

// RunContext is Run with cancellation and explicit engine limits (cycle
// caps, fault-injection hooks, pipeline logs). A structurally corrupt
// enlargement file does not fail the run: the configuration degrades to
// its single-basic-block equivalent and the degradation is counted in the
// returned stats (EFDegradations).
func (p *Prepared) RunContext(ctx context.Context, cfg machine.Config, lim core.Limits) (*stats.Run, error) {
	img, degradations, err := p.ResolveImage(cfg)
	if err != nil {
		return nil, err
	}
	return p.runImage(ctx, img, cfg, degradations, lim)
}

// ResolveImage loads the image a configuration will simulate, applying the
// degradation ladder for a structurally corrupt enlargement file (the count
// of degradations taken is returned alongside). It is exported so callers
// that need the image before running — to fingerprint it for a snapshot
// resume, say — resolve it exactly once and exactly the way RunContext
// would.
func (p *Prepared) ResolveImage(cfg machine.Config) (*loader.Image, int64, error) {
	img, err := p.image(cfg)
	if err == nil {
		return img, 0, nil
	}
	var be *loader.BadEnlargementError
	if !errors.As(err, &be) {
		return nil, 0, fmt.Errorf("exp: %s %s: %w", p.Bench.Name, cfg, err)
	}
	if cfg.Branch == machine.EnlargedBB {
		fallback := cfg
		fallback.Branch = machine.SingleBB
		img, err = p.image(fallback)
	} else {
		// Perfect mode needs an enlargement file argument; an empty one
		// keeps the oracle predictor and drops only the enlargement.
		img, err = loader.Load(p.Prog, cfg, &enlarge.File{})
	}
	if err != nil {
		return nil, 0, fmt.Errorf("exp: %s %s (degraded): %w", p.Bench.Name, cfg, err)
	}
	return img, 1, nil
}

// RunBatch simulates several engine-level variants of one translated image
// in a single batched pass (core.RunBatch): the lanes share the image, the
// decoded-metadata table, the recorded trace, and the mapped branch hints,
// and every lane's result is bit-identical to running its configuration
// through Run. All configurations must be dynamically scheduled, non-fill-
// unit, and share one image-cache key (imgKeyOf) — for dynamic machines
// that means the same block mode, since window, predictor, and memory
// knobs are engine-level. Verification against the reference output runs
// per lane, exactly as in scalar runs.
//
// Returns one stats and one error slot per configuration; the top-level
// error reports batch-level misuse (mixed image keys, a non-batchable
// configuration, an unresolvable image).
func (p *Prepared) RunBatch(cfgs []machine.Config) ([]*stats.Run, []error, error) {
	return p.RunBatchContext(context.Background(), cfgs, core.Limits{})
}

// RunBatchContext is RunBatch with cancellation and per-lane limits (the
// same Limits value is applied to every lane).
func (p *Prepared) RunBatchContext(ctx context.Context, cfgs []machine.Config, lim core.Limits) ([]*stats.Run, []error, error) {
	lanes := make([]core.BatchLane, len(cfgs))
	deg := make([]int64, len(cfgs))
	for i, cfg := range cfgs {
		img, d, err := p.ResolveImage(cfg)
		if err != nil {
			return nil, nil, err
		}
		lanes[i] = core.BatchLane{Img: img, Lim: lim}
		deg[i] = d
	}
	res, errs, err := core.RunBatchContext(ctx, lanes, p.In0, p.In1, p.Trace, p.Hints)
	if err != nil {
		return nil, nil, fmt.Errorf("exp: %s batch: %w", p.Bench.Name, err)
	}
	out := make([]*stats.Run, len(cfgs))
	for i, cfg := range cfgs {
		if errs[i] != nil {
			errs[i] = fmt.Errorf("exp: %s %s: %w", p.Bench.Name, cfg, errs[i])
			continue
		}
		if !bytes.Equal(res[i].Output, p.RefOutput) {
			errs[i] = fmt.Errorf("exp: %s %s: simulated output differs from reference", p.Bench.Name, cfg)
			continue
		}
		res[i].Stats.Work = p.RefNodes
		res[i].Stats.EFDegradations = deg[i]
		out[i] = res[i].Stats
	}
	return out, errs, nil
}

// runImage simulates a resolved image and verifies its output.
func (p *Prepared) runImage(ctx context.Context, img *loader.Image, cfg machine.Config, degradations int64, lim core.Limits) (*stats.Run, error) {
	res, err := core.RunContext(ctx, img, p.In0, p.In1, p.Trace, p.Hints, lim)
	if err != nil {
		return nil, fmt.Errorf("exp: %s %s: %w", p.Bench.Name, cfg, err)
	}
	if !bytes.Equal(res.Output, p.RefOutput) {
		return nil, fmt.Errorf("exp: %s %s: simulated output differs from reference", p.Bench.Name, cfg)
	}
	// Normalize work to the original program's node count so that
	// configurations with different code (enlarged blocks) compare by time.
	res.Stats.Work = p.RefNodes
	res.Stats.EFDegradations = degradations
	return res.Stats, nil
}

// Key identifies one grid point, including the extension dimensions
// (window override and predictor kind) so sweeps over them do not collide.
type Key struct {
	Bench  string
	Disc   machine.Discipline
	Issue  int
	Mem    byte
	Branch machine.BranchMode
	Window int // Config.WindowOverride (0 = discipline default)
	Pred   machine.PredictorKind
}

// KeyOf builds the key for a benchmark and configuration.
func KeyOf(benchName string, cfg machine.Config) Key {
	return Key{
		Bench:  benchName,
		Disc:   cfg.Disc,
		Issue:  cfg.Issue.ID,
		Mem:    cfg.Mem.ID,
		Branch: cfg.Branch,
		Window: cfg.WindowOverride,
		Pred:   cfg.Predictor,
	}
}

// Results is the measured grid.
type Results struct {
	mu   sync.Mutex
	Runs map[Key]*stats.Run

	// Failed holds the quarantined cells of a hardened sweep (GridContext):
	// cells whose runs kept failing after retries, or panicked.
	Failed []*CellError
}

// Get returns the run for a key, or nil.
func (r *Results) Get(k Key) *stats.Run {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.Runs[k]
}

func (r *Results) put(k Key, s *stats.Run) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Runs[k] = s
}

func (r *Results) fail(ce *CellError) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.Failed = append(r.Failed, ce)
}

// Grid runs the given configurations for every prepared benchmark, in
// parallel across workers goroutines (0 = GOMAXPROCS). progress, when
// non-nil, is called after each completed run. Any cell failure fails the
// whole sweep with the lowest-index cell's error; GridContext offers the
// hardened semantics (retries, journaling, quarantined failures).
func Grid(prepared []*Prepared, cfgs []machine.Config, workers int, progress func(done, total int)) (*Results, error) {
	res, err := GridContext(context.Background(), prepared, cfgs, GridOptions{Workers: workers, Progress: progress})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// GeoMeanNPC returns the geometric mean of work-normalized nodes per cycle
// across benchmarks for one configuration (the aggregation used in Figures
// 3/4). The normalization divides each benchmark's original-program node
// count by the measured cycles, so enlarged-block configurations are
// credited for the nodes their re-optimization eliminated.
func (r *Results) GeoMeanNPC(benchNames []string, cfg machine.Config) float64 {
	logSum, n := 0.0, 0
	for _, name := range benchNames {
		s := r.Get(KeyOf(name, cfg))
		if s == nil || s.Speed() <= 0 {
			return math.NaN()
		}
		logSum += math.Log(s.Speed())
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(logSum / float64(n))
}

// MeanRedundancy averages operation redundancy across benchmarks for one
// configuration (Figure 6).
func (r *Results) MeanRedundancy(benchNames []string, cfg machine.Config) float64 {
	sum, n := 0.0, 0
	for _, name := range benchNames {
		s := r.Get(KeyOf(name, cfg))
		if s == nil {
			return math.NaN()
		}
		sum += s.Redundancy()
		n++
	}
	return sum / float64(n)
}

// Curve is one line of Figures 3/4/6: a scheduling discipline plus branch
// mode.
type Curve struct {
	Disc   machine.Discipline
	Branch machine.BranchMode
}

func (c Curve) String() string {
	return fmt.Sprintf("%s/%s", c.Disc, c.Branch)
}

// Curves lists the ten lines of Figures 3, 4, and 6 in the paper's order:
// the four disciplines with single then enlarged blocks, then the two
// perfect-prediction disciplines.
func Curves() []Curve {
	var cs []Curve
	for _, bm := range []machine.BranchMode{machine.SingleBB, machine.EnlargedBB} {
		for _, d := range machine.Disciplines {
			cs = append(cs, Curve{d, bm})
		}
	}
	cs = append(cs, Curve{machine.Dyn4, machine.Perfect}, Curve{machine.Dyn256, machine.Perfect})
	return cs
}

// BenchNames returns the prepared benchmarks' names in order.
func BenchNames(prepared []*Prepared) []string {
	names := make([]string, len(prepared))
	for i, p := range prepared {
		names[i] = p.Bench.Name
	}
	sort.Strings(names)
	return names
}
