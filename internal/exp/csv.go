package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"fgpsim/internal/machine"
)

// WriteCSV dumps every measured grid point as one CSV row, for external
// plotting. Columns cover the configuration key and the main measurements.
func (r *Results) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"bench", "discipline", "issue", "mem", "branch",
		"cycles", "retired_nodes", "executed_nodes", "discarded_nodes",
		"retired_blocks", "mispredicts", "faults",
		"npc", "speed", "redundancy", "prediction_accuracy",
		"cache_hit_ratio", "mean_block_size", "mean_window_blocks",
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	r.mu.Lock()
	keys := make([]Key, 0, len(r.Runs))
	for k := range r.Runs {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.Bench != b.Bench:
			return a.Bench < b.Bench
		case a.Disc != b.Disc:
			return a.Disc < b.Disc
		case a.Issue != b.Issue:
			return a.Issue < b.Issue
		case a.Mem != b.Mem:
			return a.Mem < b.Mem
		default:
			return a.Branch < b.Branch
		}
	})

	f := func(v float64) string { return fmt.Sprintf("%.6g", v) }
	for _, k := range keys {
		s := r.Get(k)
		if s == nil {
			continue
		}
		row := []string{
			k.Bench,
			machine.Discipline(k.Disc).String(),
			fmt.Sprintf("%d", k.Issue),
			string(rune(k.Mem)),
			machine.BranchMode(k.Branch).String(),
			fmt.Sprintf("%d", s.Cycles),
			fmt.Sprintf("%d", s.RetiredNodes),
			fmt.Sprintf("%d", s.ExecutedNodes),
			fmt.Sprintf("%d", s.DiscardedNodes),
			fmt.Sprintf("%d", s.RetiredBlocks),
			fmt.Sprintf("%d", s.Mispredicts),
			fmt.Sprintf("%d", s.Faults),
			f(s.NPC()),
			f(s.Speed()),
			f(s.Redundancy()),
			f(s.PredictionAccuracy()),
			f(s.CacheHitRatio()),
			f(s.MeanBlockSize()),
			f(s.MeanWindowBlocks()),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
