package exp_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/ir"
	"fgpsim/internal/machine"
)

func gridCfgs() []machine.Config {
	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	return []machine.Config{
		{Disc: machine.Static, Issue: im8, Mem: mcA, Branch: machine.SingleBB},
		{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.SingleBB},
		{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.EnlargedBB},
		{Disc: machine.Dyn256, Issue: im8, Mem: mcA, Branch: machine.SingleBB},
	}
}

// TestGridQuarantinesFailures: cells that keep failing are quarantined with
// a typed *exp.CellError while the sweep completes, and the returned first
// error is the failed cell with the lowest job index no matter how many
// workers race — the property that makes sweep failures reproducible.
func TestGridQuarantinesFailures(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := gridCfgs()
	for _, workers := range []int{1, 8} {
		res, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
			Workers: workers,
			Retries: 1,
			Limits:  core.Limits{MaxCycles: 1}, // every cell blows its budget
		})
		var ce *exp.CellError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: err = %v, want *exp.CellError", workers, err)
		}
		if want := exp.KeyOf("compress", cfgs[0]); ce.Key != want {
			t.Errorf("workers=%d: first error is cell %+v, want lowest-index cell %+v", workers, ce.Key, want)
		}
		if ce.Attempts != 2 {
			t.Errorf("workers=%d: first error after %d attempts, want 2 (1 retry)", workers, ce.Attempts)
		}
		if len(res.Failed) != len(cfgs) {
			t.Errorf("workers=%d: %d quarantined cells, want %d", workers, len(res.Failed), len(cfgs))
		}
		if len(res.Runs) != 0 {
			t.Errorf("workers=%d: %d cells succeeded with a 1-cycle budget", workers, len(res.Runs))
		}
		var cl *core.CycleLimitError
		if !errors.As(ce, &cl) {
			t.Errorf("workers=%d: cell error does not unwrap to the cycle limit: %v", workers, ce)
		}
	}
}

// TestGridRecoversPanics: a panic inside the engine stack becomes a
// quarantined cell error (not retried — panics are deterministic) and the
// rest of the sweep still completes.
func TestGridRecoversPanics(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := gridCfgs()
	res, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		Retries: 3,
		Limits:  core.Limits{Fault: func(core.FaultPort) { panic("injected test panic") }},
	})
	var ce *exp.CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *exp.CellError", err)
	}
	if !ce.Panicked {
		t.Error("cell error not marked as panicked")
	}
	if ce.Attempts != 1 {
		t.Errorf("panicked cell ran %d attempts, want 1 (no retry)", ce.Attempts)
	}
	// The static cell ignores the fault hook and must have succeeded.
	if res.Get(exp.KeyOf("compress", cfgs[0])) == nil {
		t.Error("static cell should survive a dynamic-engine panic hook")
	}
	if got := len(res.Failed); got != len(cfgs)-1 {
		t.Errorf("%d quarantined cells, want %d (every dynamic cell)", got, len(cfgs)-1)
	}
}

// TestGridRetriesTransientFailures: a cell that fails once and then
// succeeds is retried to success and does not surface an error.
func TestGridRetriesTransientFailures(t *testing.T) {
	p := prepareOne(t, "compress")
	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	cfgs := []machine.Config{{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.SingleBB}}
	var first atomic.Bool
	first.Store(true)
	hook := func(fp core.FaultPort) {
		// Poison only the first attempt: a machine check is retryable.
		if first.CompareAndSwap(true, false) {
			fp.CorruptArch(0x1234)
		}
	}
	res, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		Retries: 2,
		Limits:  core.Limits{Fault: hook},
	})
	if err != nil {
		t.Fatalf("transient failure was not retried to success: %v", err)
	}
	if res.Get(exp.KeyOf("compress", cfgs[0])) == nil {
		t.Fatal("cell missing after successful retry")
	}
	if len(res.Failed) != 0 {
		t.Errorf("%d quarantined cells, want 0", len(res.Failed))
	}
}

// TestGridJournalResume: a sweep journals completed cells; a second sweep
// over the same grid restores every cell from the journal instead of
// re-running (proved by giving the rerun an impossible cycle budget) and
// reproduces identical statistics.
func TestGridJournalResume(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := gridCfgs()
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	res1, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate the tail of a killed sweep: a torn, half-written line.
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":{"Bench":"compress","Disc`)
	f.Close()

	restored := 0
	res2, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		Journal:  journal,
		Progress: func(done, total int) { restored = done },
		Limits:   core.Limits{MaxCycles: 1}, // any re-run cell would fail
	})
	if err != nil {
		t.Fatalf("resumed sweep re-ran cells instead of restoring them: %v", err)
	}
	if restored != len(cfgs) {
		t.Errorf("progress reported %d restored cells, want %d", restored, len(cfgs))
	}
	for _, cfg := range cfgs {
		k := exp.KeyOf("compress", cfg)
		a, b := res1.Get(k), res2.Get(k)
		if a == nil || b == nil {
			t.Fatalf("missing cell %s", cfg)
		}
		if a.Cycles != b.Cycles || a.RetiredNodes != b.RetiredNodes || a.ExecutedNodes != b.ExecutedNodes {
			t.Errorf("%s: restored stats differ: cycles %d vs %d, retired %d vs %d",
				cfg, a.Cycles, b.Cycles, a.RetiredNodes, b.RetiredNodes)
		}
		if b.BlockSizes == nil {
			t.Errorf("%s: restored stats lost the block-size histogram map", cfg)
		}
	}
}

// TestRunContextDegradesCorruptEnlargement: a structurally corrupt
// enlargement file must not fail the run — the enlarged configuration
// degrades to its single-block equivalent, the output still verifies, and
// the degradation is counted.
func TestRunContextDegradesCorruptEnlargement(t *testing.T) {
	p := prepareOne(t, "compress")
	p.EF = &enlarge.File{Chains: []enlarge.Chain{{
		Entry: ir.BlockID(1 << 30),
		Steps: []enlarge.Step{{Block: ir.BlockID(1 << 30)}, {Block: ir.BlockID(1<<30 + 1)}},
	}}}
	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	for _, bm := range []machine.BranchMode{machine.EnlargedBB, machine.Perfect} {
		cfg := machine.Config{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: bm}
		s, err := p.RunContext(context.Background(), cfg, core.Limits{})
		if err != nil {
			t.Fatalf("%s: corrupt enlargement failed the run instead of degrading: %v", bm, err)
		}
		if s.EFDegradations != 1 {
			t.Errorf("%s: EFDegradations = %d, want 1", bm, s.EFDegradations)
		}
		if s.RetiredNodes == 0 {
			t.Errorf("%s: degraded run retired nothing", bm)
		}
	}
}

// TestGridJournalSpecGuard: a journal is keyed by the sweep's SpecHash.
// Resuming with the identical spec restores cells; resuming with a
// different grid (here: a different configuration list) is refused with a
// typed *exp.StaleJournalError instead of silently seeding wrong cells.
func TestGridJournalSpecGuard(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := gridCfgs()
	journal := filepath.Join(t.TempDir(), "sweep.journal")
	if _, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{Journal: journal}); err != nil {
		t.Fatal(err)
	}

	// Accept path: the same spec resumes without re-running anything.
	res, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		Journal: journal,
		Limits:  core.Limits{MaxCycles: 1}, // any re-run cell would fail
	})
	if err != nil {
		t.Fatalf("same-spec resume: %v", err)
	}
	if len(res.Runs) != len(cfgs) {
		t.Fatalf("same-spec resume restored %d cells, want %d", len(res.Runs), len(cfgs))
	}

	// Reject path: a different configuration list is a different sweep.
	_, err = exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs[:1], exp.GridOptions{Journal: journal})
	var se *exp.StaleJournalError
	if !errors.As(err, &se) {
		t.Fatalf("different-spec resume: err = %v, want *exp.StaleJournalError", err)
	}
	if se.Path != journal || se.Want == se.Got {
		t.Errorf("stale error fields: %+v", se)
	}
}

// TestGridPreemptAndResume: with checkpoints armed, raising Preempt makes
// in-flight cells park their progress in snapshots and the sweep return a
// *exp.SweepPreemptedError; re-running the same sweep with the flag cleared
// resumes from the snapshots and finishes with statistics identical to a
// cadence-armed sweep that was never preempted (and cleans its snapshots
// up).
func TestGridPreemptAndResume(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := gridCfgs()
	dir := t.TempDir()
	baseDir, resDir := filepath.Join(dir, "base"), filepath.Join(dir, "res")
	os.MkdirAll(baseDir, 0o755)
	os.MkdirAll(resDir, 0o755)
	const every = 5000

	// Baseline: cadence-armed, never preempted.
	base, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		CheckpointEvery: every, SnapshotDir: baseDir,
	})
	if err != nil {
		t.Fatal(err)
	}

	var preempt atomic.Bool
	preempt.Store(true)
	_, err = exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		Workers: 2, CheckpointEvery: every, SnapshotDir: resDir, Preempt: &preempt,
	})
	var pe *exp.SweepPreemptedError
	if !errors.As(err, &pe) {
		t.Fatalf("preempted sweep: err = %v, want *exp.SweepPreemptedError", err)
	}
	if pe.Cells == 0 {
		t.Fatal("preempted sweep reported zero preempted cells")
	}
	snaps, _ := filepath.Glob(filepath.Join(resDir, "*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot files parked by the preempted cells")
	}

	preempt.Store(false)
	resumed, err := exp.GridContext(context.Background(), []*exp.Prepared{p}, cfgs, exp.GridOptions{
		Workers: 2, CheckpointEvery: every, SnapshotDir: resDir, Preempt: &preempt,
	})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	for _, cfg := range cfgs {
		k := exp.KeyOf("compress", cfg)
		a, b := base.Get(k), resumed.Get(k)
		if a == nil || b == nil {
			t.Fatalf("missing cell %s", cfg)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: resumed stats differ from uninterrupted cadence run:\nbase    %+v\nresumed %+v", cfg, a, b)
		}
	}
	if left, _ := filepath.Glob(filepath.Join(resDir, "*.snap*")); len(left) != 0 {
		t.Errorf("completed sweep left snapshot files behind: %v", left)
	}
}
