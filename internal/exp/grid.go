package exp

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"fgpsim/internal/chaos"
	"fgpsim/internal/core"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/snapshot"
	"fgpsim/internal/stats"
)

// CellError is the final, typed failure of one grid cell after retries.
// The cell is quarantined: the sweep keeps running, the cell's key simply
// has no entry in Results.Runs, and the error is recorded in
// Results.Failed.
type CellError struct {
	Key      Key
	Attempts int
	Panicked bool
	Err      error
}

func (e *CellError) Error() string {
	verb := "failed"
	if e.Panicked {
		verb = "panicked"
	}
	return fmt.Sprintf("exp: cell %s %s/%s issue %d mem %c %s after %d attempt(s): %v",
		e.Key.Bench, e.Key.Disc, e.Key.Branch, e.Key.Issue, e.Key.Mem, verb, e.Attempts, e.Err)
}

func (e *CellError) Unwrap() error { return e.Err }

// GridOptions harden a sweep beyond the plain Grid entry point.
type GridOptions struct {
	// Workers is the worker-goroutine count (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called after each completed cell
	// (including cells restored from the journal).
	Progress func(done, total int)
	// Retries is how many additional attempts a failed cell gets. Panics
	// and canceled/timed-out runs are never retried (they are
	// deterministic); other failures back off exponentially between
	// attempts.
	Retries int
	// BackoffBase is the first retry delay, doubling per attempt up to one
	// second (default 10ms).
	BackoffBase time.Duration
	// RunTimeout bounds each cell's simulation wall-clock (0 = none); an
	// expired cell fails with a *core.CanceledError inside its CellError.
	RunTimeout time.Duration
	// Journal, when non-empty, names a JSON-lines file of completed cells.
	// Cells found there are restored instead of re-run (resuming a killed
	// sweep), and every newly completed cell is appended and fsync'd, so
	// the journal is crash-consistent: a completed cell survives a kill -9
	// and a torn final line is ignored on the next read (journal.go).
	Journal string
	// Limits is passed to every run (cycle caps, fault hooks, pipe logs,
	// progress heartbeats).
	Limits core.Limits
	// Observer, when non-nil, is called once per finally-settled cell —
	// success, quarantined failure, or journal restore — with its outcome.
	// It runs on worker goroutines and must be safe for concurrent use.
	Observer func(CellOutcome)
	// CheckpointEvery, with SnapshotDir, arms durable mid-run checkpoints:
	// each cell drains to a quiescent boundary every N cycles and writes an
	// atomic snapshot file under SnapshotDir, and a restarted sweep resumes
	// each unfinished cell from its newest snapshot instead of from cycle 0
	// (falling back to a fresh run when the snapshot's fingerprint does not
	// match the cell's image and inputs). Fill-unit cells run unarmed: their
	// run-time image mutation makes snapshots unsupported. Snapshots are
	// removed as their cells complete.
	CheckpointEvery int64
	SnapshotDir     string
	// SnapshotSink, when non-nil and checkpoints are armed, receives the
	// encoded bytes of every durable cell snapshot right after it is
	// written locally — each mid-run checkpoint and each preempt park. It
	// is how a fabric worker ships its progress off-box: a peer resuming
	// the cell after this process is kill -9ed needs the snapshot to exist
	// somewhere the coordinator can reach. Runs on worker goroutines; must
	// be safe for concurrent use. Failures to ship are the sink's problem
	// (shipping is an optimization — the cell is still correct re-run from
	// scratch).
	SnapshotSink func(k Key, encoded []byte)
	// Preempt, when non-nil and set true, asks every armed in-flight cell to
	// stop at its next quiescent boundary. Preempted cells write a final
	// snapshot, are not journaled or quarantined, and the sweep returns a
	// *SweepPreemptedError so the caller can requeue it; the snapshots make
	// the requeued sweep cheap.
	Preempt *atomic.Bool
	// Disk, when non-nil, is the filesystem every journal and snapshot
	// operation of this sweep goes through (nil = the real one). The chaos
	// harness substitutes a fault-injecting chaos.FS here.
	Disk chaos.Disk
	// Batch groups dynamically scheduled cells that share an image-cache key
	// (same benchmark, same block mode) into K-lane batched runs
	// (core.RunBatch): one shared fetch/decode/translate pass serves every
	// window/predictor/memory variant of that image. Results are
	// bit-identical to scalar runs. Cells that cannot batch — static
	// machines, fill-unit images, singleton groups — and any lane whose
	// batch fails run through the unchanged scalar path with its full retry
	// and quarantine semantics. Sweeps with durable checkpoints armed
	// (CheckpointEvery + SnapshotDir) run scalar: per-cell snapshot files do
	// not compose with shared-pass execution.
	Batch bool
}

// CellOutcome is one settled grid cell, as reported to GridOptions.Observer.
type CellOutcome struct {
	Key       Key
	Attempts  int           // simulation attempts (0 for restored cells)
	Duration  time.Duration // wall clock across all attempts (0 when restored)
	Restored  bool          // satisfied from the journal instead of re-run
	Preempted bool          // snapshotted and surrendered, not settled
	Err       *CellError    // nil on success
	Stats     *stats.Run    // the settled result (nil when failed or preempted)
}

// SweepPreemptedError reports a sweep that stopped because Preempt was set:
// the named cells were snapshotted (when their configuration supports it)
// and left unjournaled, so re-running the same sweep picks them up from
// their snapshots. It is a cooperative-scheduling verdict, not a failure.
type SweepPreemptedError struct {
	Cells int // cells preempted mid-run
}

func (e *SweepPreemptedError) Error() string {
	return fmt.Sprintf("exp: sweep preempted with %d cell(s) in flight", e.Cells)
}

// GridContext runs the configurations for every prepared benchmark under
// the given options. Failed cells are quarantined, not fatal: the returned
// Results holds every successful cell plus the per-cell errors, and the
// returned error is the failed cell with the lowest job index (identical
// across runs regardless of worker interleaving or retries) — or nil when
// every cell succeeded. Cancellation of ctx stops dispatch and aborts
// in-flight runs.
func GridContext(ctx context.Context, prepared []*Prepared, cfgs []machine.Config, opts GridOptions) (*Results, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type job struct {
		p   *Prepared
		cfg machine.Config
		key Key
		idx int
	}
	jobs := make([]job, 0, len(prepared)*len(cfgs))
	for _, p := range prepared {
		for _, cfg := range cfgs {
			jobs = append(jobs, job{p, cfg, KeyOf(p.Bench.Name, cfg), len(jobs)})
		}
	}
	res := &Results{Runs: make(map[Key]*stats.Run, len(jobs))}
	total := len(jobs)
	var done atomic.Int64

	disk := opts.Disk
	if disk == nil {
		disk = chaos.OS{}
	}
	pending := jobs
	var jw *Journal
	if opts.Journal != "" {
		spec := SpecHash(prepared, cfgs)
		specFound, err := CheckJournalSpecOn(disk, opts.Journal, spec)
		if err != nil {
			return res, err // *StaleJournalError, or the file is unreadable
		}
		prior, err := ReadJournalOn(disk, opts.Journal)
		if err != nil {
			return res, fmt.Errorf("exp: journal %s: %w", opts.Journal, err)
		}
		pending = jobs[:0]
		for _, j := range jobs {
			if s, ok := prior[j.key]; ok {
				res.Runs[j.key] = s
				if opts.Observer != nil {
					opts.Observer(CellOutcome{Key: j.key, Restored: true, Stats: s})
				}
				if opts.Progress != nil {
					opts.Progress(int(done.Add(1)), total)
				}
				continue
			}
			pending = append(pending, j)
		}
		jw, err = OpenJournalOn(disk, opts.Journal)
		if err != nil {
			return res, fmt.Errorf("exp: journal %s: %w", opts.Journal, err)
		}
		defer jw.Close()
		if !specFound {
			if err := jw.WriteSpec(spec); err != nil {
				return res, fmt.Errorf("exp: journal %s: %w", opts.Journal, err)
			}
		}
	}

	// Batched pre-pass: run groups of same-image dynamic cells through
	// core.RunBatch, settling the lanes that succeed; everything else (and
	// any lane whose batch failed) falls through to the scalar machinery
	// below, which retains the full retry/quarantine/snapshot semantics.
	if opts.Batch && opts.CheckpointEvery == 0 {
		type batchKey struct {
			p   *Prepared
			img imgKey
		}
		groups := make(map[batchKey][]job)
		var order []batchKey
		var scalar []job
		for _, j := range pending {
			if j.cfg.Disc == machine.Static || j.cfg.Branch == machine.FillUnit {
				scalar = append(scalar, j)
				continue
			}
			bk := batchKey{p: j.p, img: imgKeyOf(j.cfg)}
			if len(groups[bk]) == 0 {
				order = append(order, bk)
			}
			groups[bk] = append(groups[bk], j)
		}
		var batches [][]job
		for _, bk := range order {
			g := groups[bk]
			if len(g) < 2 {
				scalar = append(scalar, g...) // a 1-lane batch shares nothing
				continue
			}
			batches = append(batches, g)
		}
		var (
			bwg      sync.WaitGroup
			scalarMu sync.Mutex
		)
		bch := make(chan []job)
		for w := 0; w < workers; w++ {
			bwg.Add(1)
			go func() {
				defer bwg.Done()
				for g := range bch {
					start := time.Now()
					bctx := ctx
					if opts.RunTimeout > 0 {
						var cancel context.CancelFunc
						bctx, cancel = context.WithTimeout(ctx, opts.RunTimeout)
						defer cancel()
					}
					lim := opts.Limits
					lim.Preempt = opts.Preempt
					cfgs := make([]machine.Config, len(g))
					for i, j := range g {
						cfgs[i] = j.cfg
					}
					stats, laneErrs, berr := g[0].p.RunBatchContext(bctx, cfgs, lim)
					dur := time.Since(start)
					for i, j := range g {
						if berr != nil || laneErrs[i] != nil || stats[i] == nil {
							scalarMu.Lock()
							scalar = append(scalar, j)
							scalarMu.Unlock()
							continue
						}
						res.put(j.key, stats[i])
						if jw != nil {
							jw.appendResult(journalEntry{Key: j.key, Stats: stats[i]})
						}
						if opts.Observer != nil {
							opts.Observer(CellOutcome{Key: j.key, Attempts: 1, Duration: dur, Stats: stats[i]})
						}
						if opts.Progress != nil {
							opts.Progress(int(done.Add(1)), total)
						}
					}
				}
			}()
		}
	batchDispatch:
		for _, g := range batches {
			select {
			case bch <- g:
			case <-ctx.Done():
				break batchDispatch
			}
		}
		close(bch)
		bwg.Wait()
		pending = scalar
	}

	var (
		wg        sync.WaitGroup
		errMu     sync.Mutex
		first     *CellError
		firstIdx  int
		preempted atomic.Int64
	)
	ch := make(chan job)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				start := time.Now()
				s, attempts, wasPreempted, cerr := runCellRetrying(ctx, j.p, j.cfg, j.key, opts)
				if wasPreempted {
					// The cell surrendered its slot at a quiescent boundary and
					// parked its progress in a snapshot; it is not settled, so
					// it is neither journaled nor quarantined.
					preempted.Add(1)
					if opts.Observer != nil {
						opts.Observer(CellOutcome{Key: j.key, Attempts: attempts, Duration: time.Since(start), Preempted: true})
					}
					continue
				}
				if cerr != nil {
					res.fail(cerr)
					if opts.Observer != nil {
						opts.Observer(CellOutcome{Key: j.key, Attempts: attempts, Duration: time.Since(start), Err: cerr})
					}
					// Keep the error of the lowest job index, so a sweep
					// with several failures reports the same one no matter
					// how the workers interleave or which attempts retried.
					errMu.Lock()
					if first == nil || j.idx < firstIdx {
						first, firstIdx = cerr, j.idx
					}
					errMu.Unlock()
					continue
				}
				if s == nil {
					continue // sweep torn down mid-run: not a cell verdict
				}
				res.put(j.key, s)
				if jw != nil {
					jw.appendResult(journalEntry{Key: j.key, Stats: s})
				}
				if opts.Observer != nil {
					opts.Observer(CellOutcome{Key: j.key, Attempts: attempts, Duration: time.Since(start), Stats: s})
				}
				if opts.Progress != nil {
					opts.Progress(int(done.Add(1)), total)
				}
			}
		}()
	}
dispatch:
	for _, j := range pending {
		select {
		case ch <- j:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ch)
	wg.Wait()
	if first != nil {
		return res, first
	}
	if cerr := ctx.Err(); cerr != nil {
		return res, fmt.Errorf("exp: sweep canceled: %w", cerr)
	}
	if n := preempted.Load(); n > 0 {
		return res, &SweepPreemptedError{Cells: int(n)}
	}
	return res, nil
}

// runCellRetrying runs one cell with the retry policy, returning the
// attempt count alongside the verdict. It returns (nil, n, false, nil)
// only when the surrounding sweep is being canceled; preempted reports a
// cell that surrendered mid-run (never retried — the preempt flag would
// still be set).
func runCellRetrying(ctx context.Context, p *Prepared, cfg machine.Config, key Key, opts GridOptions) (*stats.Run, int, bool, *CellError) {
	backoff := opts.BackoffBase
	if backoff <= 0 {
		backoff = 10 * time.Millisecond
	}
	const maxBackoff = time.Second
	attempts := 0
	for {
		attempts++
		s, panicked, preempted, err := runCellOnce(ctx, p, cfg, key, opts)
		if preempted {
			return nil, attempts, true, nil
		}
		if err == nil {
			return s, attempts, false, nil
		}
		if ctx.Err() != nil {
			return nil, attempts, false, nil
		}
		var canceled *core.CanceledError
		retryable := !panicked && !errors.As(err, &canceled)
		if !retryable || attempts > opts.Retries {
			return nil, attempts, false, &CellError{Key: key, Attempts: attempts, Panicked: panicked, Err: err}
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, attempts, false, nil
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// runCellOnce runs one simulation attempt, converting a panic anywhere in
// the engine stack into an error so a corrupt cell cannot take down the
// whole sweep process. With checkpoints armed it resumes the cell from its
// newest matching snapshot, checkpoints it as it runs, and removes the
// snapshot once the cell completes; a preempted run parks its final state
// in the snapshot and reports preempted=true.
func runCellOnce(ctx context.Context, p *Prepared, cfg machine.Config, key Key, opts GridOptions) (s *stats.Run, panicked, preempted bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			s, panicked, preempted = nil, true, false
			err = fmt.Errorf("panic: %v\n%s", r, debug.Stack())
		}
	}()
	if opts.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.RunTimeout)
		defer cancel()
	}
	lim := opts.Limits
	lim.Preempt = opts.Preempt
	disk := opts.Disk
	if disk == nil {
		disk = chaos.OS{}
	}

	// The fill unit mutates its image at run time, so its cells cannot be
	// snapshotted (core returns CheckpointUnsupportedError); they run
	// unarmed, and a preempted fill-unit run simply starts over later.
	armed := opts.CheckpointEvery > 0 && opts.SnapshotDir != "" && cfg.Branch != machine.FillUnit
	if !armed {
		s, err = p.RunContext(ctx, cfg, lim)
	} else {
		var img *loader.Image
		var deg int64
		img, deg, err = p.ResolveImage(cfg)
		if err != nil {
			return nil, false, false, err
		}
		fp := snapshot.RunFingerprint(img, p.In0, p.In1, p.Hints)
		snapPath := CellSnapshotPath(opts.SnapshotDir, key)
		if prior, rerr := snapshot.ReadLatestOn(disk, snapPath); rerr == nil && prior.Fingerprint == fp && prior.Engine != nil {
			lim.Resume = prior.Engine // stale fingerprints fall through to a fresh run
		}
		lim.CheckpointEvery = opts.CheckpointEvery
		save := snapshot.SaverOn(disk, snapPath, fp, nil)
		// Checkpoint persistence is best-effort by design: a snapshot is an
		// optimization (resume progress), and a full disk or failed fsync
		// under it must cost at most that progress — never the run. core
		// aborts the run on a Checkpoint hook error, so disk failures are
		// absorbed here; the atomic WriteFile rotation guarantees the prior
		// good snapshot survives a failed save.
		lim.Checkpoint = func(st *core.EngineState) error {
			if serr := save(st); serr != nil {
				return nil
			}
			if opts.SnapshotSink != nil {
				opts.SnapshotSink(key, snapshot.Encode(&snapshot.Snapshot{Fingerprint: fp, Engine: st}))
			}
			return nil
		}
		s, err = p.runImage(ctx, img, cfg, deg, lim)
		if err != nil && lim.Resume != nil {
			// A snapshot that matched the fingerprint but failed restore
			// validation is corrupt beyond its CRCs; drop it and run fresh
			// rather than failing the cell on every retry.
			var re *core.ResumeError
			if errors.As(err, &re) {
				snapshot.RemoveOn(disk, snapPath)
				lim.Resume = nil
				s, err = p.runImage(ctx, img, cfg, deg, lim)
			}
		}
		var pe *core.PreemptedError
		if err != nil && errors.As(err, &pe) {
			if pe.State != nil {
				// Best effort: if the park fails the progress is lost, but the
				// requeued cell still runs correctly from scratch.
				parked := &snapshot.Snapshot{Fingerprint: fp, Engine: pe.State}
				if werr := snapshot.WriteFileOn(disk, snapPath, parked); werr == nil && opts.SnapshotSink != nil {
					opts.SnapshotSink(key, snapshot.Encode(parked))
				}
			}
			return nil, false, true, nil
		}
		if err == nil {
			snapshot.RemoveOn(disk, snapPath)
		}
		return s, false, false, err
	}
	var pe *core.PreemptedError
	if err != nil && errors.As(err, &pe) {
		return nil, false, true, nil
	}
	return s, false, false, err
}

// CellID is the canonical identity of one grid cell: a hex FNV-1a hash
// over every Key field. It names the cell's snapshot file, and the fabric
// uses it as the wire identity a coordinator and its workers agree on
// without shipping the full Key.
func CellID(k Key) string {
	h := specFNV(0xcbf29ce484222325)
	h.str(k.Bench)
	h.u64(uint64(k.Disc))
	h.u64(uint64(int64(k.Issue)))
	h.byte(k.Mem)
	h.u64(uint64(k.Branch))
	h.u64(uint64(int64(k.Window)))
	h.byte(byte(k.Pred))
	return fmt.Sprintf("%016x", uint64(h))
}

// CellSnapshotPath names the snapshot file of one grid cell, so each sweep
// dimension parks in its own file and a restarted sweep over the same spec
// finds it again.
func CellSnapshotPath(dir string, k Key) string {
	return filepath.Join(dir, CellID(k)+".snap")
}

// The JSON-lines journal lives in journal.go (exported: Journal,
// ReplayJournal, ReadJournal) so internal/server can reuse it.
