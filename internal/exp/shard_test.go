package exp

import (
	"fmt"
	"testing"

	"fgpsim/internal/machine"
)

func shardCfg(disc machine.Discipline, window int) machine.Config {
	return machine.Config{
		Disc:           disc,
		Issue:          machine.IssueModels[0],
		Mem:            machine.MemConfigs[0],
		Branch:         machine.SingleBB,
		WindowOverride: window,
	}
}

// TestShardKeyGroupsByImage: configs differing only in engine-level knobs
// (window, predictor, memory discipline) share a translated image and must
// share a shard key, while codegen-relevant changes (block mode, bench)
// must split.
func TestShardKeyGroupsByImage(t *testing.T) {
	base := shardCfg(machine.Dyn4, 0)
	w8 := shardCfg(machine.Dyn4, 8)
	gshare := base
	gshare.Predictor = machine.GSharePredictor
	consMem := base
	consMem.ConservativeMem = true
	k := ShardKey("wc", base)
	for name, cfg := range map[string]machine.Config{"window": w8, "gshare": gshare, "consmem": consMem} {
		if got := ShardKey("wc", cfg); got != k {
			t.Errorf("%s variant got shard key %x, want %x (same image, same shard)", name, got, k)
		}
	}
	enlarged := base
	enlarged.Branch = machine.EnlargedBB
	if ShardKey("wc", enlarged) == k {
		t.Error("enlarged-block variant shares a shard key with single-block (different image)")
	}
	if ShardKey("spell", base) == k {
		t.Error("different benchmark shares a shard key (different image)")
	}
}

// TestRingDeterministicAndStable: the same members always produce the same
// owner for a key, and removing one member moves only the keys it owned.
func TestRingDeterministicAndStable(t *testing.T) {
	build := func(members ...string) *Ring {
		r := NewRing()
		for _, m := range members {
			r.Add(m)
		}
		return r
	}
	r1 := build("w1", "w2", "w3")
	r2 := build("w3", "w1", "w2") // insertion order must not matter

	keys := make([]uint64, 0, 512)
	for i := 0; i < 512; i++ {
		h := specFNV(0xcbf29ce484222325)
		h.str(fmt.Sprintf("key-%d", i))
		keys = append(keys, uint64(h))
	}
	ownerCounts := map[string]int{}
	for _, k := range keys {
		o1, o2 := r1.Owner(k), r2.Owner(k)
		if o1 != o2 {
			t.Fatalf("key %x: owner depends on insertion order (%s vs %s)", k, o1, o2)
		}
		ownerCounts[o1]++
	}
	// Every member should own a nontrivial share (smoke check on spread).
	for _, m := range []string{"w1", "w2", "w3"} {
		if ownerCounts[m] == 0 {
			t.Fatalf("member %s owns no keys: %v", m, ownerCounts)
		}
	}

	// Remove w2: keys owned by w1/w3 must not move.
	before := make(map[uint64]string, len(keys))
	for _, k := range keys {
		before[k] = r1.Owner(k)
	}
	r1.Remove("w2")
	for _, k := range keys {
		after := r1.Owner(k)
		if before[k] != "w2" && after != before[k] {
			t.Fatalf("key %x moved %s -> %s though its owner survived", k, before[k], after)
		}
		if before[k] == "w2" && after == "w2" {
			t.Fatalf("key %x still owned by removed member", k)
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate memberships.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing()
	if got := r.Owner(42); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	r.Add("only")
	for _, k := range []uint64{0, 1 << 40, ^uint64(0)} {
		if got := r.Owner(k); got != "only" {
			t.Fatalf("single-member ring owner(%x) = %q", k, got)
		}
	}
	r.Add("only") // idempotent
	if r.Len() != 1 {
		t.Fatalf("idempotent Add changed membership: %d", r.Len())
	}
	r.Remove("missing") // idempotent
	if r.Len() != 1 {
		t.Fatalf("Remove of non-member changed membership: %d", r.Len())
	}
}
