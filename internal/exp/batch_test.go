package exp_test

import (
	"reflect"
	"testing"

	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
)

// batchCfgs builds a lane set over one benchmark: dynamic enlarged-block
// variants sharing a single image-cache key, differing only in engine-level
// knobs.
func batchCfgs(t *testing.T) []machine.Config {
	t.Helper()
	base := exp.MustConfigFor(exp.Curve{Disc: machine.Dyn256, Branch: machine.EnlargedBB}, 8, 'A')
	with := func(f func(*machine.Config)) machine.Config {
		c := base
		f(&c)
		return c
	}
	return []machine.Config{
		base,
		with(func(c *machine.Config) { c.WindowOverride = 16 }),
		with(func(c *machine.Config) { c.Predictor = machine.GSharePredictor }),
		with(func(c *machine.Config) { c.ConservativeMem = true }),
		with(func(c *machine.Config) { c.Mem, _ = machine.MemConfigByID('D') }),
	}
}

// TestRunBatchMatchesScalar verifies the harness-level contract over a real
// benchmark: every lane of Prepared.RunBatch returns exactly the statistics
// of the same configuration through Prepared.Run.
func TestRunBatchMatchesScalar(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := batchCfgs(t)
	batch, errs, err := p.RunBatch(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		if errs[i] != nil {
			t.Fatalf("lane %d (%s): %v", i, cfg, errs[i])
		}
		scalar, err := p.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], scalar) {
			t.Errorf("lane %d (%s): batched stats differ from scalar:\nbatch:  %+v\nscalar: %+v",
				i, cfg, batch[i], scalar)
		}
	}
}

// TestRunBatchRejectsMixedImages pins the harness-level misuse error: lanes
// that do not share an image-cache key (here: a static lane among dynamic
// ones) cannot batch.
func TestRunBatchRejectsMixedImages(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := batchCfgs(t)
	cfgs = append(cfgs, exp.MustConfigFor(exp.Curve{Disc: machine.Static, Branch: machine.EnlargedBB}, 8, 'A'))
	if _, _, err := p.RunBatch(cfgs); err == nil {
		t.Fatal("static lane in a batch: want an error")
	}
}

// TestGridBatchMatchesScalar runs one sweep twice — scalar workers and the
// batched pre-pass — and requires identical results for every cell,
// including cells the batcher must fall back on (static discipline,
// fill-unit, singleton groups).
func TestGridBatchMatchesScalar(t *testing.T) {
	p := prepareOne(t, "compress")
	cfgs := batchCfgs(t)
	// Cells the batched pre-pass must route to the scalar path.
	cfgs = append(cfgs,
		exp.MustConfigFor(exp.Curve{Disc: machine.Static, Branch: machine.EnlargedBB}, 8, 'A'),
		exp.MustConfigFor(exp.Curve{Disc: machine.Dyn4, Branch: machine.SingleBB}, 8, 'A'), // singleton group
	)
	fu := exp.MustConfigFor(exp.Curve{Disc: machine.Dyn4, Branch: machine.EnlargedBB}, 8, 'A')
	fu.Branch = machine.FillUnit
	cfgs = append(cfgs, fu)

	prepared := []*exp.Prepared{p}
	scalar, err := exp.Grid(prepared, cfgs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := exp.GridContext(t.Context(), prepared, cfgs, exp.GridOptions{
		Workers: 2,
		Batch:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batched.Failed) != 0 {
		t.Fatalf("batched sweep quarantined %d cells: %v", len(batched.Failed), batched.Failed[0])
	}
	for _, cfg := range cfgs {
		k := exp.KeyOf("compress", cfg)
		s, b := scalar.Get(k), batched.Get(k)
		if s == nil || b == nil {
			t.Fatalf("%s: missing result (scalar %v, batched %v)", cfg, s != nil, b != nil)
		}
		if !reflect.DeepEqual(s, b) {
			t.Errorf("%s: batched sweep stats differ from scalar sweep:\nbatch:  %+v\nscalar: %+v", cfg, b, s)
		}
	}
}
