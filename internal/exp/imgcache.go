package exp

import (
	"sync"

	"fgpsim/internal/enlarge"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// The translating loader deep-copies the program per Load, and for
// enlarged-block modes re-runs materialization — work that is identical for
// every sweep point sharing the codegen-relevant part of the configuration.
// A Prepared therefore memoizes loader.Load results keyed by exactly the
// Config fields the loader reads:
//
//   - whether blocks are enlarged (Branch is EnlargedBB or Perfect — both
//     materialize the enlargement file; SingleBB and FillUnit load the
//     program as-is),
//   - for statically scheduled machines, the issue model and the cache hit
//     latency (they shape the precomputed multinodewords).
//
// Everything else (window, predictor, BTB size, miss latency, conservative
// memory, ...) affects only the engine, so e.g. all window depths of one
// discipline/block-mode sweep share a single image. Cached images are
// immutable after Load; each hit returns a shallow copy carrying the
// caller's full Config, since the engines read engine-level fields from
// img.Cfg. FillUnit runs bypass the cache entirely: the fill unit enlarges
// its image at run time (AddChain mutates the program), so every run needs
// a private copy.
type imageCache struct {
	mu   sync.Mutex
	m    map[imgKey]*imageCacheEnt
	tick int64
}

// imgKey is the codegen-relevant subset of machine.Config.
type imgKey struct {
	enlarged bool
	static   bool
	issue    machine.IssueModel // statically scheduled machines only
	hitLat   int                // statically scheduled machines only
	sched    machine.SchedKind  // statically scheduled machines only
}

type imageCacheEnt struct {
	img  *loader.Image
	used int64 // cache tick of last use, for LRU eviction
}

// imageCacheCap bounds the cache (an image holds a full program clone).
// The figure sweeps need well under this many distinct images per
// benchmark: 2 block modes x (1 dynamic + 8 issue models x 2 hit
// latencies, static).
const imageCacheCap = 64

func imgKeyOf(cfg machine.Config) imgKey {
	k := imgKey{enlarged: cfg.Branch == machine.EnlargedBB || cfg.Branch == machine.Perfect}
	if cfg.Disc == machine.Static {
		k.static = true
		k.issue = cfg.Issue
		k.hitLat = cfg.Mem.HitLatency
		k.sched = cfg.Sched
	}
	return k
}

// load returns a cached image for cfg's codegen key, loading it on a miss.
// The mutex covers the whole load, so concurrent sweep workers asking for
// the same key do the translation work once.
func (c *imageCache) load(prog *ir.Program, cfg machine.Config, ef *enlarge.File) (*loader.Image, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := imgKeyOf(cfg)
	ent := c.m[k]
	if ent == nil {
		img, err := loader.Load(prog, cfg, ef)
		if err != nil {
			return nil, err
		}
		if c.m == nil {
			c.m = make(map[imgKey]*imageCacheEnt)
		}
		c.evictFor(1)
		ent = &imageCacheEnt{img: img}
		c.m[k] = ent
	}
	c.tick++
	ent.used = c.tick
	im := *ent.img
	im.Cfg = cfg
	return &im, nil
}

// evictFor makes room for n new entries by dropping the least recently
// used ones.
func (c *imageCache) evictFor(n int) {
	for len(c.m)+n > imageCacheCap {
		var victim imgKey
		oldest := int64(1<<63 - 1)
		for k, ent := range c.m {
			if ent.used < oldest {
				oldest = ent.used
				victim = k
			}
		}
		delete(c.m, victim)
	}
}

// image returns the loaded image to simulate cfg on, from the cache when
// the mode allows sharing.
func (p *Prepared) image(cfg machine.Config) (*loader.Image, error) {
	if cfg.Branch == machine.FillUnit {
		return loader.Load(p.Prog, cfg, p.EF)
	}
	return p.imgs.load(p.Prog, cfg, p.EF)
}
