package exp

import (
	"fmt"
	"sort"

	"fgpsim/internal/machine"
)

// This file is the fabric's shard planner: the piece that decides which
// worker a grid cell belongs to. Cells shard by *image-cache key* — the
// codegen-relevant subset of the configuration (imgcache.go) plus the
// benchmark — because that key is exactly the unit of reuse in a sweep: a
// worker that already translated "wc, enlarged, dynamic" serves every
// window/predictor/memory variant of it from its local image cache, so
// keeping those cells on one worker turns the translation work from
// O(cells) into O(distinct images). The assignment itself is a consistent
// hash ring, so workers joining or dying move only the cells that hashed
// to them, not the whole plan.

// ShardKey hashes a cell's image-cache identity: the benchmark name plus
// the Config fields the translating loader actually reads (imgKeyOf). All
// cells sharing a translated image share a shard key, and therefore a ring
// owner.
func ShardKey(benchName string, cfg machine.Config) uint64 {
	k := imgKeyOf(cfg)
	h := specFNV(0xcbf29ce484222325)
	h.str(benchName)
	if k.enlarged {
		h.byte(1)
	} else {
		h.byte(0)
	}
	if k.static {
		h.byte(1)
	} else {
		h.byte(0)
	}
	h.u64(uint64(int64(k.issue.ID)))
	h.u64(uint64(int64(k.hitLat)))
	h.byte(byte(k.sched))
	return uint64(h)
}

// ringReplicas is the virtual-node count per ring member. Enough replicas
// smooth the load split across a handful of workers; the exact value only
// shifts which keys land where, never correctness, since every owner
// change is absorbed by requeue/steal.
const ringReplicas = 64

// Ring is a consistent-hash ring over named nodes (fabric workers). It is
// deterministic — the same members and keys always produce the same owners,
// which keeps shard plans reproducible across coordinator restarts — and
// not safe for concurrent use; callers serialize access (the coordinator
// holds its own mutex).
type Ring struct {
	members map[string]bool
	points  []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring.
func NewRing() *Ring {
	return &Ring{members: make(map[string]bool)}
}

// Add inserts a node (idempotent).
func (r *Ring) Add(node string) {
	if r.members[node] {
		return
	}
	r.members[node] = true
	r.rebuild()
}

// Remove deletes a node (idempotent).
func (r *Ring) Remove(node string) {
	if !r.members[node] {
		return
	}
	delete(r.members, node)
	r.rebuild()
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.members))
	for n := range r.members {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner maps a shard key to its owning node: the first virtual node at or
// clockwise after the key's position. Returns "" on an empty ring.
func (r *Ring) Owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	if i == len(r.points) {
		i = 0 // wrap past the top of the ring
	}
	return r.points[i].node
}

func (r *Ring) rebuild() {
	r.points = r.points[:0]
	for node := range r.members {
		for v := 0; v < ringReplicas; v++ {
			h := specFNV(0xcbf29ce484222325)
			h.str(node)
			h.str(fmt.Sprintf("#%d", v))
			r.points = append(r.points, ringPoint{hash: uint64(h), node: node})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break by name so hash collisions cannot make ownership
		// depend on map iteration order.
		return r.points[i].node < r.points[j].node
	})
}
