package exp

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/chaos"
)

// chaosDisk builds a chaos.FS over the real filesystem with the given
// hand-pinned faults on component "d".
func chaosDisk(faults ...chaos.Fault) *chaos.FS {
	for i := range faults {
		faults[i].Component = "d"
	}
	return chaos.NewFS(chaos.OS{}, &chaos.Schedule{Seed: 1, Faults: faults}, "d")
}

// TestJournalPoisonedByFsyncFailure is satellite coverage for the fsync
// gate: a failed Sync must fail the triggering Append with a
// *PoisonedJournalError AND every Append after it — a post-failure entry
// must never be reportable as durable, even though later fsyncs would
// "succeed" (the kernel may have dropped the dirty pages the failed one
// covered).
func TestJournalPoisonedByFsyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	before := JournalFsyncFailures()
	disk := chaosDisk(chaos.Fault{Kind: chaos.SyncFail, Class: "sync", N: 2})
	j, err := OpenJournalOn(disk, path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := journalKey("a"), journalKey("b")
	if err := j.AppendCell(k1, runWithCycles(10), 1); err != nil {
		t.Fatalf("append 1 (clean sync): %v", err)
	}

	var poisoned *PoisonedJournalError
	err = j.AppendCell(k2, runWithCycles(20), 1)
	if !errors.As(err, &poisoned) {
		t.Fatalf("append 2 = %v; want *PoisonedJournalError", err)
	}
	if poisoned.Path != path {
		t.Fatalf("poison path = %q, want %q", poisoned.Path, path)
	}
	var inj *chaos.InjectedError
	if !errors.As(err, &inj) || inj.Kind != chaos.SyncFail {
		t.Fatalf("poison cause = %v; want the injected sync failure", err)
	}
	if got := JournalFsyncFailures(); got != before+1 {
		t.Fatalf("JournalFsyncFailures = %d, want %d", got, before+1)
	}

	// The fault has drained — a raw sync would now succeed — but the
	// journal must stay poisoned anyway.
	for i := 0; i < 3; i++ {
		if err := j.AppendCell(journalKey(fmt.Sprintf("late-%d", i)), runWithCycles(1), 1); !errors.As(err, &poisoned) {
			t.Fatalf("append after poison = %v; want *PoisonedJournalError", err)
		}
	}
	if err := j.Close(); !errors.As(err, &poisoned) {
		t.Fatalf("Close on poisoned journal = %v; want *PoisonedJournalError", err)
	}
	if got := JournalFsyncFailures(); got != before+1 {
		t.Fatalf("poisoned appends re-counted fsync failures: %d", got-before)
	}

	// Recovery contract: reopening the same path yields a clean journal,
	// and only the entries appended before the poison are durable.
	j2, err := OpenJournalOn(disk, path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.AppendCell(k2, runWithCycles(20), 2); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[k1].Cycles != 10 || m[k2].Cycles != 20 {
		t.Fatalf("after recovery: %+v", m)
	}
}

// TestJournalTornWriteDoesNotGlueNextAppend is the torn-tail guard: a
// failed write that lands a newline-less prefix must not swallow the NEXT
// successful append by gluing two JSON values onto one undecodable line.
func TestJournalTornWriteDoesNotGlueNextAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	// Arg=17 tears the second append mid-line (the entry lines here are
	// ~200 bytes, so 17 is a proper prefix with no newline).
	disk := chaosDisk(chaos.Fault{Kind: chaos.TornWrite, Class: "write", N: 2, Arg: 17})
	j, err := OpenJournalOn(disk, path)
	if err != nil {
		t.Fatal(err)
	}
	k1, k2, k3 := journalKey("a"), journalKey("b"), journalKey("c")
	if err := j.AppendCell(k1, runWithCycles(10), 1); err != nil {
		t.Fatal(err)
	}
	var inj *chaos.InjectedError
	if err := j.AppendCell(k2, runWithCycles(20), 1); !errors.As(err, &inj) || inj.Kind != chaos.TornWrite {
		t.Fatalf("append 2 = %v; want injected torn-write", err)
	}
	// The caller saw the append fail, so k2 is legitimately absent. What
	// must NOT happen is k3 — which the caller saw succeed — vanishing too.
	if err := j.AppendCell(k3, runWithCycles(30), 1); err != nil {
		t.Fatalf("append 3: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if m[k1] == nil || m[k1].Cycles != 10 {
		t.Fatalf("k1 lost: %+v", m)
	}
	if m[k3] == nil || m[k3].Cycles != 30 {
		t.Fatalf("k3 (acknowledged durable after the torn write) lost: %+v", m)
	}
	if m[k2] != nil {
		t.Fatalf("k2 (failed append) resurrected: %+v", m)
	}
}

// TestJournalMultiWriterInterleavedTornTails is the satellite dedup test:
// several writers extend one O_APPEND journal, writers die mid-write(2)
// leaving newline-less fragments between the survivors' lines, and the
// stamped records must still merge to the deterministic (attempt,
// fingerprint) winners. It also pins the exact blast radius of a tear:
//
//   - a writer that OPENS over a torn tail isolates it (tailIsTorn), so
//     its appends all survive;
//   - a fragment that appears under an ALREADY-OPEN writer's feet glues
//     onto that writer's next line and loses it — one line, never more —
//     and the next reopen (which is what crash recovery does) is clean.
func TestJournalMultiWriterInterleavedTornTails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.journal")
	k1, k2, k3 := journalKey("a"), journalKey("b"), journalKey("c")

	// tear simulates a writer killed inside write(2): a direct O_APPEND
	// write of a JSON prefix with no trailing newline.
	tear := func(frag string) {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte(frag)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	a, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AppendCell(k1, runWithCycles(10), 1); err != nil {
		t.Fatal(err)
	}
	tear(`{"key":{"bench":"b","disc":`) // writer B dies mid-write

	// Writer C opens over B's fragment: tailIsTorn must isolate it so C's
	// first append survives.
	c, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AppendCell(k3, runWithCycles(30), 1); err != nil {
		t.Fatal(err)
	}
	// Interleaved stamped duplicates for k2: C's attempt-1 record and A's
	// attempt-2 record (a steal re-ran the cell). File order is C-then-A
	// here, but the attempt ordinal, not file order, must decide.
	if err := c.AppendCell(k2, runWithCycles(20), 1); err != nil {
		t.Fatal(err)
	}
	if err := a.AppendCell(k2, runWithCycles(22), 2); err != nil {
		t.Fatal(err)
	}

	tear(`{"key":{"bench":"a","di`) // writer D dies mid-write
	// C, already open and unaware of D's fragment, appends k1@3. This line
	// glues onto the fragment and is lost — the documented one-line bound.
	if err := c.AppendCell(k1, runWithCycles(13), 3); err != nil {
		t.Fatal(err)
	}
	a.Close()
	c.Close()

	// Writer E reopens (crash recovery): the glued line ended with '\n',
	// so the tail is clean and E's append lands whole.
	e, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AppendCell(k1, runWithCycles(14), 4); err != nil {
		t.Fatal(err)
	}
	e.Close()

	m, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 3 {
		t.Fatalf("merged %d keys, want 3: %+v", len(m), m)
	}
	if m[k3] == nil || m[k3].Cycles != 30 {
		t.Fatalf("k3 (first append over a torn tail) = %+v, want 30 cycles", m[k3])
	}
	if m[k2] == nil || m[k2].Cycles != 22 {
		t.Fatalf("k2 winner = %+v, want the attempt-2 record (22 cycles)", m[k2])
	}
	if m[k1] == nil || m[k1].Cycles != 14 {
		t.Fatalf("k1 winner = %+v, want the attempt-4 record (14 cycles)", m[k1])
	}
}
