package exp_test

import (
	"math"
	"strings"
	"testing"

	"fgpsim/internal/bench"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/exp"
	"fgpsim/internal/machine"
)

func prepareOne(t *testing.T, name string) *exp.Prepared {
	t.Helper()
	b := bench.ByName(name)
	if b == nil {
		t.Fatalf("no benchmark %s", name)
	}
	p, err := exp.Prepare(b, enlarge.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPrepare(t *testing.T) {
	p := prepareOne(t, "compress")
	if len(p.EF.Chains) == 0 {
		t.Error("no enlargement chains")
	}
	if len(p.Trace) == 0 {
		t.Error("no trace")
	}
	if len(p.RefOutput) == 0 {
		t.Error("no reference output")
	}
	if len(p.Hints) == 0 {
		t.Error("no static hints")
	}
}

func TestGridSmall(t *testing.T) {
	p := prepareOne(t, "compress")
	im2, _ := machine.IssueModelByID(2)
	im8, _ := machine.IssueModelByID(8)
	mcA, _ := machine.MemConfigByID('A')
	cfgs := []machine.Config{
		{Disc: machine.Static, Issue: im2, Mem: mcA, Branch: machine.SingleBB},
		{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.SingleBB},
		{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.EnlargedBB},
		{Disc: machine.Dyn4, Issue: im8, Mem: mcA, Branch: machine.Perfect},
	}
	res, err := exp.Grid([]*exp.Prepared{p}, cfgs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		s := res.Get(exp.KeyOf("compress", cfg))
		if s == nil {
			t.Fatalf("missing result for %s", cfg)
		}
		if s.NPC() <= 0 {
			t.Errorf("%s: NPC = %v", cfg, s.NPC())
		}
	}
	narrow := res.Get(exp.KeyOf("compress", cfgs[0])).NPC()
	wide := res.Get(exp.KeyOf("compress", cfgs[2])).NPC()
	if wide <= narrow {
		t.Errorf("wide dynamic machine (%.2f) should beat narrow static (%.2f)", wide, narrow)
	}
	gm := res.GeoMeanNPC([]string{"compress"}, cfgs[1])
	if math.IsNaN(gm) || gm <= 0 {
		t.Errorf("GeoMeanNPC = %v", gm)
	}
	if !math.IsNaN(res.GeoMeanNPC([]string{"missing"}, cfgs[1])) {
		t.Error("GeoMeanNPC of missing benchmark should be NaN")
	}
}

func TestCurvesOrder(t *testing.T) {
	cs := exp.Curves()
	if len(cs) != 10 {
		t.Fatalf("got %d curves, want 10", len(cs))
	}
	if cs[0].Disc != machine.Static || cs[0].Branch != machine.SingleBB {
		t.Errorf("first curve = %v", cs[0])
	}
	if cs[9].Disc != machine.Dyn256 || cs[9].Branch != machine.Perfect {
		t.Errorf("last curve = %v", cs[9])
	}
}

func TestFigureConfigsCoverFigures(t *testing.T) {
	cfgs := exp.FigureConfigs()
	if len(cfgs) == 0 || len(cfgs) > 560 {
		t.Fatalf("unexpected figure config count %d", len(cfgs))
	}
	seen := make(map[string]bool)
	for _, c := range cfgs {
		if seen[c.String()] {
			t.Errorf("duplicate config %s", c)
		}
		seen[c.String()] = true
	}
	// Figure 3 needs every curve at every issue model with memory A.
	for _, c := range exp.Curves() {
		for _, im := range machine.IssueModels {
			if !seen[exp.MustConfigFor(c, im.ID, 'A').String()] {
				t.Errorf("figure 3 config missing: %s at issue %d", c, im.ID)
			}
		}
	}
	// Figure 5's composites.
	for _, fc := range machine.Figure5Configs {
		cfg := exp.MustConfigFor(exp.Curve{Disc: machine.Dyn4, Branch: machine.EnlargedBB}, fc.Issue, fc.Mem)
		if !seen[cfg.String()] {
			t.Errorf("figure 5 config missing: %s", cfg)
		}
	}
}

func TestGridCountIs560(t *testing.T) {
	if n := len(machine.Grid()); n != 560 {
		t.Errorf("full grid has %d points, want 560 (the paper's count)", n)
	}
}

// TestFigureRendering runs a tiny sweep and checks the formatters produce
// tables containing the measured numbers.
func TestFigureRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep too slow for -short")
	}
	p := prepareOne(t, "grep")
	res, err := exp.Grid([]*exp.Prepared{p}, exp.FigureConfigs(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	benches := []string{"grep"}
	for name, table := range map[string]string{
		"fig2": exp.Figure2(res, benches),
		"fig3": exp.Figure3(res, benches),
		"fig4": exp.Figure4(res, benches),
		"fig5": exp.Figure5(res, benches),
		"fig6": exp.Figure6(res, benches),
	} {
		if !strings.Contains(table, "Figure") {
			t.Errorf("%s: missing header", name)
		}
		if strings.Contains(table, "NaN") {
			t.Errorf("%s: contains NaN:\n%s", name, table)
		}
		if strings.Count(table, "\n") < 5 {
			t.Errorf("%s: too few rows:\n%s", name, table)
		}
	}
	t.Logf("\n%s", exp.Figure3(res, benches))
	t.Logf("\n%s", exp.Figure2(res, benches))
}
