package exp

import (
	"strings"
	"testing"

	"fgpsim/internal/machine"
	"fgpsim/internal/stats"
)

// fakeResults builds a synthetic grid where speed is a known function of
// the configuration, so figure extraction can be checked cell by cell.
func fakeResults(benches []string) *Results {
	r := &Results{Runs: make(map[Key]*stats.Run)}
	for _, b := range benches {
		for _, cfg := range machine.Grid() {
			s := stats.New()
			s.Cycles = 1000
			// speed = issue id + position of mem config + a branch bonus.
			bonus := int64(0)
			if cfg.Branch == machine.EnlargedBB {
				bonus = 100
			}
			s.RetiredNodes = int64(cfg.Issue.ID)*1000 + bonus
			s.ExecutedNodes = s.RetiredNodes + 50
			s.DiscardedNodes = 50
			s.RecordBlock(int(5 + bonus/20))
			r.Runs[KeyOf(b, cfg)] = s
		}
	}
	return r
}

func TestGeoMeanAndRedundancyExtraction(t *testing.T) {
	benches := []string{"a", "b"}
	r := fakeResults(benches)
	cfg := MustConfigFor(Curve{machine.Dyn4, machine.SingleBB}, 4, 'A')
	if got := r.GeoMeanNPC(benches, cfg); got != 4.0 {
		t.Errorf("GeoMeanNPC = %v, want 4.0", got)
	}
	cfgE := MustConfigFor(Curve{machine.Dyn4, machine.EnlargedBB}, 4, 'A')
	if got := r.GeoMeanNPC(benches, cfgE); got != 4.1 {
		t.Errorf("GeoMeanNPC enlarged = %v, want 4.1", got)
	}
	red := r.MeanRedundancy(benches, cfg)
	want := 50.0 / 4050.0
	if red < want*0.99 || red > want*1.01 {
		t.Errorf("MeanRedundancy = %v, want %v", red, want)
	}
}

func TestFigureTablesContainExpectedCells(t *testing.T) {
	benches := []string{"x"}
	r := fakeResults(benches)
	f3 := Figure3(r, benches)
	if !strings.Contains(f3, "8.00") || !strings.Contains(f3, "1.00") {
		t.Errorf("figure 3 missing expected cells:\n%s", f3)
	}
	// Row order: the first data row is the sequential model.
	lines := strings.Split(f3, "\n")
	if !strings.HasPrefix(lines[2], "seq") {
		t.Errorf("figure 3 first row = %q, want seq", lines[2])
	}
	if !strings.HasPrefix(lines[9], "4M12A") {
		t.Errorf("figure 3 last row = %q, want 4M12A", lines[9])
	}

	f4 := Figure4(r, benches)
	rows := strings.Split(f4, "\n")
	wantOrder := []string{"A", "D", "E", "B", "F", "G", "C"}
	for i, w := range wantOrder {
		if !strings.HasPrefix(rows[2+i], w) {
			t.Errorf("figure 4 row %d = %q, want config %s first", i, rows[2+i], w)
		}
	}

	f5 := Figure5(r, benches)
	if !strings.Contains(f5, "1A") || !strings.Contains(f5, "8G") {
		t.Errorf("figure 5 missing composite configs:\n%s", f5)
	}

	f6 := Figure6(r, benches)
	if !strings.Contains(f6, "0.01") {
		t.Errorf("figure 6 missing redundancy cells:\n%s", f6)
	}

	f2 := Figure2(r, benches)
	if !strings.Contains(f2, "mean size") {
		t.Errorf("figure 2 missing mean row:\n%s", f2)
	}
}

func TestMissingDataRendersDash(t *testing.T) {
	r := &Results{Runs: make(map[Key]*stats.Run)}
	f3 := Figure3(r, []string{"none"})
	if !strings.Contains(f3, "-") {
		t.Error("missing data should render as dashes")
	}
}
