package ir

import (
	"strings"
	"testing"
)

// TestNodeStringsCoverEveryKind renders one node of each opcode and checks
// the output mentions its operands (catching stale format strings).
func TestNodeStringsCoverEveryKind(t *testing.T) {
	cases := []struct {
		n    Node
		want []string
	}{
		{Node{Op: Const, Dst: 5, Imm: 42}, []string{"r5", "42", "const"}},
		{Node{Op: Mov, Dst: 5, A: 6}, []string{"r5", "r6"}},
		{Node{Op: Add, Dst: 5, A: 6, B: 7}, []string{"add", "r6", "r7"}},
		{Node{Op: AddI, Dst: 5, A: 6, Imm: -3}, []string{"addi", "r6"}},
		{Node{Op: Neg, Dst: 5, A: 6}, []string{"neg", "r6"}},
		{Node{Op: Ld, Dst: 5, A: 6, Imm: 8}, []string{"ld", "[r6+8]"}},
		{Node{Op: LdB, Dst: 5, A: 6}, []string{"ldb"}},
		{Node{Op: St, A: 6, B: 7, Imm: -4}, []string{"st", "[r6-4]", "r7"}},
		{Node{Op: StB, A: 6, B: 7}, []string{"stb"}},
		{Node{Op: Br, A: 5, Target: 3}, []string{"br", "r5", "b3"}},
		{Node{Op: Jmp, Target: 9}, []string{"jmp", "b9"}},
		{Node{Op: Call, Callee: 2}, []string{"call", "f2"}},
		{Node{Op: Ret}, []string{"ret"}},
		{Node{Op: Halt}, []string{"halt"}},
		{Node{Op: Assert, A: 5, Expect: true, Target: 4}, []string{"assert", "r5", "b4", "true"}},
		{Node{Op: Sys, Dst: 5, A: 6, B: NoReg, Imm: 2}, []string{"sys", "2", "r6"}},
	}
	for _, c := range cases {
		s := c.n.String()
		for _, w := range c.want {
			if !strings.Contains(s, w) {
				t.Errorf("%v renders as %q, missing %q", c.n.Op, s, w)
			}
		}
	}
}

func TestDumpFuncMentionsStructure(t *testing.T) {
	p := makeTestProgram()
	s := p.DumpFunc(p.Funcs[0])
	for _, w := range []string{"func main", "b0:", "b1:", "entry=b0", "fall b1"} {
		if !strings.Contains(s, w) {
			t.Errorf("DumpFunc missing %q:\n%s", w, s)
		}
	}
}

func TestDumpMarksEnlargedOrigins(t *testing.T) {
	p := makeTestProgram()
	nb := &Block{Term: Node{Op: Halt}, Fall: NoBlock}
	p.AddBlock(0, nb)
	nb.Orig = 0 // pretend it was enlarged from block 0
	s := p.Dump()
	if !strings.Contains(s, "(from b0)") {
		t.Errorf("Dump should mark enlarged blocks:\n%s", s)
	}
}
