// Package ir defines the node-level intermediate representation shared by
// every tool in the reproduction: the MiniC compiler emits it, the
// translating loader transforms and schedules it, the enlargement pass
// rewrites it, and both simulation engines execute it.
//
// A Node is what the paper calls a node: an individual micro-operation.
// Nodes are grouped into basic blocks, blocks into functions, and functions
// into a Program. Memory nodes (loads and stores) occupy memory issue slots
// in a multinodeword; every other node occupies an ALU slot.
package ir

import "fmt"

// Reg names an architectural register. The abstract machine has NumRegs
// general-purpose 32-bit registers. NoReg marks an unused operand slot.
type Reg int16

// Register-file geometry and the software conventions the MiniC compiler
// follows. The simulators only care about NumRegs; the conventions live here
// so that every tool agrees on them.
const (
	NumRegs = 64      // architectural register count
	NoReg   = -1      // "no register" sentinel for unused Dst/A/B slots
	RegRet  = Reg(1)  // function return value
	RegSP   = Reg(63) // stack pointer
)

// BlockID names a basic block. IDs are global across the whole program (they
// index Program.Blocks), which is what lets branch arcs, profiles, and
// enlargement files refer to blocks without naming functions.
type BlockID int32

// FuncID names a function; it indexes Program.Funcs.
type FuncID int32

// NoBlock marks "no successor" (e.g. the fallthrough slot of a Ret).
const NoBlock = BlockID(-1)

// InitialSP is the stack pointer value at program entry for a machine with
// the given memory size. Every engine and the functional interpreter must
// agree on it so runs are bit-identical.
func InitialSP(memSize int64) int32 { return int32(memSize - 64) }

// Node is a single micro-operation. The operand fields are interpreted
// per-opcode; see the Op constants. A node either occupies a memory slot
// (loads and stores) or an ALU slot (everything else) of a multinodeword.
type Node struct {
	Op  Op
	Dst Reg // result register, or NoReg
	A   Reg // first source, or NoReg
	B   Reg // second source, or NoReg

	// Imm is the immediate: the literal for Const, the address offset for
	// memory nodes, and the system-call number for Sys.
	Imm int64

	// Target is the taken target for Br, the target for Jmp, and the
	// fault-to block for Assert.
	Target BlockID

	// Expect is the direction an Assert asserts: true means "A must be
	// nonzero (branch would have been taken)". An Assert whose condition
	// disagrees with Expect signals a fault and control transfers to Target
	// after the enclosing block's work is discarded.
	Expect bool

	// Callee is the called function for Call terminators.
	Callee FuncID
}

// Block is a basic block: a straight-line body (which may contain Assert
// nodes in enlarged code) ended by exactly one terminator node.
type Block struct {
	ID   BlockID
	Fn   FuncID
	Body []Node

	// Term is the terminator: Br, Jmp, Call, Ret, or Halt.
	Term Node

	// Fall is the not-taken successor of a Br and the return-continuation
	// block of a Call; NoBlock otherwise.
	Fall BlockID

	// Orig is the entry block this block was enlarged from, or the block's
	// own ID for original code. Profiling and the block-size histograms key
	// on it.
	Orig BlockID
}

// NumNodes reports how many nodes the block contributes to the dynamic node
// count: its body plus the terminator.
func (b *Block) NumNodes() int { return len(b.Body) + 1 }

// Succs returns the possible control successors of the block's terminator
// (not counting Assert fault edges, which are recorded per-node). Call
// returns the callee entry implicitly; here it reports the continuation.
func (b *Block) Succs() []BlockID {
	switch b.Term.Op {
	case Br:
		return []BlockID{b.Term.Target, b.Fall}
	case Jmp:
		return []BlockID{b.Term.Target}
	case Call:
		return []BlockID{b.Fall}
	default:
		return nil
	}
}

// Func is a compiled function.
type Func struct {
	ID    FuncID
	Name  string
	Entry BlockID
	// Blocks lists the function's blocks in layout order (entry first).
	Blocks []BlockID
	// FrameSize is the byte size of the stack frame the prologue allocates.
	FrameSize int32
	// NumArgs is the number of word-sized arguments passed on the stack.
	NumArgs int
}

// Program is a complete translated program: the unit the translating loader
// consumes and the simulators execute.
type Program struct {
	Funcs  []*Func
	Blocks []*Block // indexed by BlockID
	Entry  FuncID

	// Data is the initial data segment image, loaded at DataBase.
	Data     []byte
	DataBase int64

	// MemSize is the size of the flat simulated memory in bytes; the stack
	// grows down from MemSize.
	MemSize int64
}

// Block returns the block with the given ID.
func (p *Program) Block(id BlockID) *Block { return p.Blocks[id] }

// Func returns the function with the given ID.
func (p *Program) Func(id FuncID) *Func { return p.Funcs[id] }

// FuncByName returns the function with the given name, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// AddBlock appends a block to the program arena, assigns its ID, and
// registers it with its function. Orig is set to the block's own ID; passes
// that clone blocks (the enlarger) overwrite it afterwards.
func (p *Program) AddBlock(fn FuncID, b *Block) BlockID {
	id := BlockID(len(p.Blocks))
	b.ID = id
	b.Fn = fn
	b.Orig = id
	p.Blocks = append(p.Blocks, b)
	if int(fn) < len(p.Funcs) {
		p.Funcs[fn].Blocks = append(p.Funcs[fn].Blocks, id)
	}
	return id
}

// NumNodes reports the static node count of the whole program.
func (p *Program) NumNodes() int {
	n := 0
	for _, b := range p.Blocks {
		n += b.NumNodes()
	}
	return n
}

// StaticMix reports the static counts of memory-slot and ALU-slot nodes,
// the ratio the paper reports as "about 2.5 to one" (ALU to memory).
func (p *Program) StaticMix() (mem, alu int) {
	for _, b := range p.Blocks {
		for i := range b.Body {
			if b.Body[i].Op.IsMem() {
				mem++
			} else {
				alu++
			}
		}
		alu++ // terminator
	}
	return mem, alu
}

func (n Node) String() string {
	switch n.Op {
	case Const:
		return fmt.Sprintf("r%d = const %d", n.Dst, n.Imm)
	case Mov:
		return fmt.Sprintf("r%d = r%d", n.Dst, n.A)
	case Ld:
		return fmt.Sprintf("r%d = ld [r%d%+d]", n.Dst, n.A, n.Imm)
	case LdB:
		return fmt.Sprintf("r%d = ldb [r%d%+d]", n.Dst, n.A, n.Imm)
	case St:
		return fmt.Sprintf("st [r%d%+d] = r%d", n.A, n.Imm, n.B)
	case StB:
		return fmt.Sprintf("stb [r%d%+d] = r%d", n.A, n.Imm, n.B)
	case Br:
		return fmt.Sprintf("br r%d -> b%d", n.A, n.Target)
	case Jmp:
		return fmt.Sprintf("jmp b%d", n.Target)
	case Call:
		return fmt.Sprintf("call f%d", n.Callee)
	case Ret:
		return "ret"
	case Halt:
		return "halt"
	case Assert:
		return fmt.Sprintf("assert r%d==%v else b%d", n.A, n.Expect, n.Target)
	case Sys:
		return fmt.Sprintf("r%d = sys %d(r%d, r%d)", n.Dst, n.Imm, n.A, n.B)
	case AddI:
		return fmt.Sprintf("r%d = addi r%d, %d", n.Dst, n.A, n.Imm)
	default:
		if n.B == NoReg {
			if n.A == NoReg {
				return fmt.Sprintf("r%d = %s %d", n.Dst, n.Op, n.Imm)
			}
			return fmt.Sprintf("r%d = %s r%d", n.Dst, n.Op, n.A)
		}
		return fmt.Sprintf("r%d = %s r%d, r%d", n.Dst, n.Op, n.A, n.B)
	}
}
