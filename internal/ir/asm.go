package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Textual node-program format ("assembly"). Disassemble renders a complete
// program — header, data segment, functions, blocks — and Assemble parses
// it back; the two round-trip exactly. The per-node syntax matches
// Node.String, so dumps are valid assembly bodies. The format exists so
// node programs can be written by hand, diffed, and fed to cmd/tld without
// going through MiniC.
//
//	program memsize=8388608 entry=f1 database=4096
//	data 0 "hello\x00world"
//	func main (f0) args=1 frame=16 entry=b0
//	b0:
//		r5 = const 42
//		r6 = ld [r5+0]
//		st [r5+4] = r6
//		assert r6==true else b2
//		br r6 -> b1 | fall b2
//	b1:
//		ret
//	b2:
//		halt

// Disassemble renders the program as assembly text.
func Disassemble(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program memsize=%d entry=f%d database=%d\n", p.MemSize, p.Entry, p.DataBase)
	// Data in bounded-width chunks, skipping zero runs.
	const chunk = 32
	for off := 0; off < len(p.Data); off += chunk {
		end := off + chunk
		if end > len(p.Data) {
			end = len(p.Data)
		}
		seg := p.Data[off:end]
		allZero := true
		for _, b := range seg {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			continue
		}
		fmt.Fprintf(&sb, "data %d %s\n", off, strconv.QuoteToASCII(string(seg)))
	}
	for _, f := range p.Funcs {
		sb.WriteString(p.DumpFunc(f))
	}
	return sb.String()
}

// asmParser parses assembly text. Blocks may appear in any order and with
// gaps in their IDs (dumps of optimized programs have both: pruning leaves
// holes, enlargement appends high IDs to earlier functions); the arena is
// assembled in a second phase, with unreferenced holes filled by inert
// halt blocks.
type asmParser struct {
	lines  []string
	pos    int
	prog   *Program
	blocks map[BlockID]*Block
	owner  map[BlockID]FuncID
	order  map[FuncID][]BlockID
	maxID  BlockID
}

type asmError struct {
	line int
	msg  string
}

func (e *asmError) Error() string { return fmt.Sprintf("ir: asm line %d: %s", e.line, e.msg) }

// Assemble parses assembly text into a program and validates it.
func Assemble(src string) (*Program, error) {
	ap := &asmParser{
		lines:  strings.Split(src, "\n"),
		blocks: make(map[BlockID]*Block),
		owner:  make(map[BlockID]FuncID),
		order:  make(map[FuncID][]BlockID),
	}
	if err := ap.parse(); err != nil {
		return nil, err
	}
	if err := ap.link(); err != nil {
		return nil, err
	}
	if err := ap.prog.Validate(); err != nil {
		return nil, err
	}
	return ap.prog, nil
}

// link builds the block arena and per-function lists from the parsed map.
func (ap *asmParser) link() error {
	p := ap.prog
	if len(ap.blocks) == 0 {
		return ap.errf("program has no blocks")
	}
	p.Blocks = make([]*Block, int(ap.maxID)+1)
	for id, b := range ap.blocks {
		b.ID = id
		b.Fn = ap.owner[id]
		if b.Orig < 0 {
			b.Orig = id
		}
		p.Blocks[id] = b
	}
	for id := range p.Blocks {
		if p.Blocks[id] == nil {
			// Hole: fill with an inert block owned by function 0.
			p.Blocks[id] = &Block{
				ID: BlockID(id), Orig: BlockID(id),
				Term: Node{Op: Halt}, Fall: NoBlock,
			}
		}
	}
	for _, f := range p.Funcs {
		f.Blocks = ap.order[f.ID]
	}
	return nil
}

func (ap *asmParser) errf(format string, args ...any) error {
	return &asmError{line: ap.pos, msg: fmt.Sprintf(format, args...)}
}

// next returns the next significant line (trimmed), or "" at EOF.
func (ap *asmParser) next() string {
	for ap.pos < len(ap.lines) {
		line := strings.TrimSpace(ap.lines[ap.pos])
		ap.pos++
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line
	}
	return ""
}

func (ap *asmParser) peek() string {
	save := ap.pos
	line := ap.next()
	ap.pos = save
	return line
}

// kvInt extracts "key=<int>" from a fields list.
func kvInt(fields []string, key string) (int64, bool) {
	for _, f := range fields {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			n, err := strconv.ParseInt(strings.TrimPrefix(v, "b"), 10, 64)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

func kvID(fields []string, key string, prefix string) (int64, bool) {
	for _, f := range fields {
		if v, ok := strings.CutPrefix(f, key+"="); ok {
			v = strings.TrimPrefix(v, prefix)
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

func (ap *asmParser) parse() error {
	header := ap.next()
	if !strings.HasPrefix(header, "program ") {
		return ap.errf("expected 'program' header, got %q", header)
	}
	fields := strings.Fields(header)[1:]
	memSize, ok := kvInt(fields, "memsize")
	if !ok {
		return ap.errf("program header needs memsize=")
	}
	entry, ok := kvID(fields, "entry", "f")
	if !ok {
		return ap.errf("program header needs entry=fN")
	}
	dataBase, ok := kvInt(fields, "database")
	if !ok {
		return ap.errf("program header needs database=")
	}
	ap.prog = &Program{MemSize: memSize, Entry: FuncID(entry), DataBase: dataBase}

	for {
		line := ap.next()
		if line == "" {
			break
		}
		switch {
		case strings.HasPrefix(line, "data "):
			if err := ap.parseData(line); err != nil {
				return err
			}
		case strings.HasPrefix(line, "func "):
			if err := ap.parseFunc(line); err != nil {
				return err
			}
		default:
			return ap.errf("unexpected line %q", line)
		}
	}
	if int(ap.prog.Entry) >= len(ap.prog.Funcs) {
		return ap.errf("entry function f%d undefined", ap.prog.Entry)
	}
	return nil
}

func (ap *asmParser) parseData(line string) error {
	rest := strings.TrimPrefix(line, "data ")
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return ap.errf("data needs offset and string")
	}
	off, err := strconv.Atoi(rest[:sp])
	if err != nil || off < 0 {
		return ap.errf("bad data offset %q", rest[:sp])
	}
	s, err := strconv.Unquote(strings.TrimSpace(rest[sp+1:]))
	if err != nil {
		return ap.errf("bad data string: %v", err)
	}
	p := ap.prog
	if need := off + len(s); need > len(p.Data) {
		p.Data = append(p.Data, make([]byte, need-len(p.Data))...)
	}
	copy(p.Data[off:], s)
	return nil
}

// funcHeaderRE-ish parsing: "func NAME (fN) args=N frame=N entry=bN".
func (ap *asmParser) parseFunc(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return ap.errf("malformed func header %q", line)
	}
	name := fields[1]
	idStr := strings.Trim(fields[2], "()")
	if !strings.HasPrefix(idStr, "f") {
		return ap.errf("func header needs (fN)")
	}
	id, err := strconv.Atoi(idStr[1:])
	if err != nil {
		return ap.errf("bad function id %q", idStr)
	}
	if id != len(ap.prog.Funcs) {
		return ap.errf("function ids must be dense and ordered: got f%d, want f%d", id, len(ap.prog.Funcs))
	}
	args, _ := kvInt(fields[3:], "args")
	frame, _ := kvInt(fields[3:], "frame")
	entry, ok := kvID(fields[3:], "entry", "b")
	if !ok {
		return ap.errf("func header needs entry=bN")
	}
	f := &Func{
		ID:        FuncID(id),
		Name:      name,
		NumArgs:   int(args),
		FrameSize: int32(frame),
		Entry:     BlockID(entry),
	}
	ap.prog.Funcs = append(ap.prog.Funcs, f)

	// Blocks until the next func/data/EOF.
	for {
		line := ap.peek()
		if line == "" || strings.HasPrefix(line, "func ") || strings.HasPrefix(line, "data ") {
			return nil
		}
		ap.next()
		if err := ap.parseBlock(f, line); err != nil {
			return err
		}
	}
}

// parseBlock parses "bN:" plus its nodes and terminator.
func (ap *asmParser) parseBlock(f *Func, label string) error {
	orig := BlockID(-1)
	if i := strings.Index(label, " "); i > 0 {
		// Optional "(from bN)" annotation on enlarged blocks.
		ann := strings.TrimSpace(label[i:])
		if from, ok := strings.CutPrefix(ann, "(from b"); ok {
			n, err := strconv.Atoi(strings.TrimSuffix(from, ")"))
			if err == nil {
				orig = BlockID(n)
			}
		}
		label = label[:i]
	}
	label = strings.TrimSuffix(label, ":")
	if !strings.HasPrefix(label, "b") {
		return ap.errf("expected block label, got %q", label)
	}
	id, err := strconv.Atoi(label[1:])
	if err != nil || id < 0 {
		return ap.errf("bad block label %q", label)
	}
	if _, dup := ap.blocks[BlockID(id)]; dup {
		return ap.errf("duplicate block b%d", id)
	}
	b := &Block{Fall: NoBlock, Orig: orig} // -1 = "self", resolved at link
	ap.blocks[BlockID(id)] = b
	ap.owner[BlockID(id)] = f.ID
	ap.order[f.ID] = append(ap.order[f.ID], BlockID(id))
	if BlockID(id) > ap.maxID {
		ap.maxID = BlockID(id)
	}

	for {
		line := ap.peek()
		if line == "" {
			return ap.errf("block b%d has no terminator", id)
		}
		ap.next()
		node, fall, isTerm, err := ap.parseNode(line)
		if err != nil {
			return err
		}
		if isTerm {
			b.Term = node
			b.Fall = fall
			return nil
		}
		b.Body = append(b.Body, node)
	}
}

func parseReg(s string) (Reg, error) {
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseBlockRef(s string) (BlockID, error) {
	if !strings.HasPrefix(s, "b") {
		return 0, fmt.Errorf("expected block ref, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad block ref %q", s)
	}
	return BlockID(n), nil
}

// parseMemOperand parses "[rA+imm]" / "[rA-imm]".
func parseMemOperand(s string) (Reg, int64, error) {
	s = strings.TrimPrefix(strings.TrimSuffix(s, "]"), "[")
	i := strings.IndexAny(s, "+-")
	if i < 0 {
		r, err := parseReg(s)
		return r, 0, err
	}
	r, err := parseReg(s[:i])
	if err != nil {
		return 0, 0, err
	}
	imm, err := strconv.ParseInt(s[i:], 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("bad memory offset in %q", s)
	}
	return r, imm, nil
}

var asmBinOps = map[string]Op{
	"add": Add, "sub": Sub, "mul": Mul, "div": Div, "rem": Rem,
	"and": And, "or": Or, "xor": Xor, "shl": Shl, "shr": Shr,
	"eq": Eq, "ne": Ne, "lt": Lt, "le": Le, "gt": Gt, "ge": Ge,
}

// parseNode parses one node line (terminator lines also yield the fall
// block).
func (ap *asmParser) parseNode(line string) (n Node, fall BlockID, isTerm bool, err error) {
	fall = NoBlock
	fail := func(format string, args ...any) (Node, BlockID, bool, error) {
		return Node{}, NoBlock, false, ap.errf(format, args...)
	}

	// Terminator fall annotation: "... | fall bN".
	if i := strings.Index(line, " | fall "); i >= 0 {
		fb, err := parseBlockRef(strings.TrimSpace(line[i+8:]))
		if err != nil {
			return fail("%v", err)
		}
		fall = fb
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return fail("empty node")
	}

	switch fields[0] {
	case "jmp":
		if len(fields) != 2 {
			return fail("jmp needs a target")
		}
		t, err := parseBlockRef(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		return Node{Op: Jmp, Target: t}, fall, true, nil
	case "br":
		// br rA -> bN
		if len(fields) != 4 || fields[2] != "->" {
			return fail("br syntax: br rA -> bN")
		}
		a, err := parseReg(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		t, err := parseBlockRef(fields[3])
		if err != nil {
			return fail("%v", err)
		}
		return Node{Op: Br, A: a, Target: t}, fall, true, nil
	case "call":
		if len(fields) != 2 || !strings.HasPrefix(fields[1], "f") {
			return fail("call syntax: call fN")
		}
		id, err := strconv.Atoi(fields[1][1:])
		if err != nil {
			return fail("bad callee %q", fields[1])
		}
		return Node{Op: Call, Callee: FuncID(id)}, fall, true, nil
	case "ret":
		return Node{Op: Ret}, fall, true, nil
	case "halt":
		return Node{Op: Halt}, fall, true, nil
	case "st", "stb":
		// st [rA+imm] = rB
		if len(fields) != 4 || fields[2] != "=" {
			return fail("store syntax: st [rA+imm] = rB")
		}
		a, imm, err := parseMemOperand(fields[1])
		if err != nil {
			return fail("%v", err)
		}
		b, err := parseReg(fields[3])
		if err != nil {
			return fail("%v", err)
		}
		op := St
		if fields[0] == "stb" {
			op = StB
		}
		return Node{Op: op, A: a, B: b, Imm: imm}, fall, false, nil
	case "assert":
		// assert rA==true else bN
		if len(fields) != 4 || fields[2] != "else" {
			return fail("assert syntax: assert rA==BOOL else bN")
		}
		cond, expectStr, ok := strings.Cut(fields[1], "==")
		if !ok {
			return fail("assert syntax: assert rA==BOOL else bN")
		}
		a, err := parseReg(cond)
		if err != nil {
			return fail("%v", err)
		}
		expect := expectStr == "true"
		if !expect && expectStr != "false" {
			return fail("assert expects true or false, got %q", expectStr)
		}
		t, err := parseBlockRef(fields[3])
		if err != nil {
			return fail("%v", err)
		}
		return Node{Op: Assert, A: a, B: NoReg, Expect: expect, Target: t}, fall, false, nil
	}

	// Assignment forms: "rD = ...".
	if len(fields) < 3 || fields[1] != "=" {
		return fail("unrecognized node %q", line)
	}
	dst, err := parseReg(fields[0])
	if err != nil {
		return fail("%v", err)
	}
	rhs := fields[2:]
	switch rhs[0] {
	case "const":
		if len(rhs) != 2 {
			return fail("const needs a value")
		}
		imm, err := strconv.ParseInt(rhs[1], 10, 64)
		if err != nil {
			return fail("bad const %q", rhs[1])
		}
		return Node{Op: Const, Dst: dst, A: NoReg, B: NoReg, Imm: imm}, fall, false, nil
	case "ld", "ldb":
		if len(rhs) != 2 {
			return fail("load needs an address")
		}
		a, imm, err := parseMemOperand(rhs[1])
		if err != nil {
			return fail("%v", err)
		}
		op := Ld
		if rhs[0] == "ldb" {
			op = LdB
		}
		return Node{Op: op, Dst: dst, A: a, B: NoReg, Imm: imm}, fall, false, nil
	case "neg", "not":
		if len(rhs) != 2 {
			return fail("%s needs one operand", rhs[0])
		}
		a, err := parseReg(rhs[1])
		if err != nil {
			return fail("%v", err)
		}
		op := Neg
		if rhs[0] == "not" {
			op = Not
		}
		return Node{Op: op, Dst: dst, A: a, B: NoReg}, fall, false, nil
	case "addi":
		if len(rhs) != 3 {
			return fail("addi syntax: rD = addi rA, imm")
		}
		a, err := parseReg(strings.TrimSuffix(rhs[1], ","))
		if err != nil {
			return fail("%v", err)
		}
		imm, err := strconv.ParseInt(rhs[2], 10, 64)
		if err != nil {
			return fail("bad addi immediate %q", rhs[2])
		}
		return Node{Op: AddI, Dst: dst, A: a, B: NoReg, Imm: imm}, fall, false, nil
	case "sys":
		// rD = sys N(rA, rB)
		rest := strings.Join(rhs[1:], " ")
		open := strings.IndexByte(rest, '(')
		closeP := strings.IndexByte(rest, ')')
		if open < 0 || closeP < open {
			return fail("sys syntax: rD = sys N(rA, rB)")
		}
		no, err := strconv.ParseInt(strings.TrimSpace(rest[:open]), 10, 64)
		if err != nil {
			return fail("bad sys number")
		}
		args := strings.Split(rest[open+1:closeP], ",")
		if len(args) != 2 {
			return fail("sys needs two argument slots")
		}
		parseOpt := func(s string) (Reg, error) {
			s = strings.TrimSpace(s)
			if s == "r-1" {
				return NoReg, nil
			}
			return parseReg(s)
		}
		a, err := parseOpt(args[0])
		if err != nil {
			return fail("%v", err)
		}
		b, err := parseOpt(args[1])
		if err != nil {
			return fail("%v", err)
		}
		return Node{Op: Sys, Dst: dst, A: a, B: b, Imm: no}, fall, false, nil
	}
	// Binary and mov forms.
	if op, ok := asmBinOps[rhs[0]]; ok {
		if len(rhs) != 3 {
			return fail("%s syntax: rD = %s rA, rB", rhs[0], rhs[0])
		}
		a, err := parseReg(strings.TrimSuffix(rhs[1], ","))
		if err != nil {
			return fail("%v", err)
		}
		b, err := parseReg(rhs[2])
		if err != nil {
			return fail("%v", err)
		}
		return Node{Op: op, Dst: dst, A: a, B: b}, fall, false, nil
	}
	// "rD = rA" is a move.
	if len(rhs) == 1 {
		a, err := parseReg(rhs[0])
		if err != nil {
			return fail("%v", err)
		}
		return Node{Op: Mov, Dst: dst, A: a, B: NoReg}, fall, false, nil
	}
	return fail("unrecognized node %q", line)
}
