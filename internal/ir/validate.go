package ir

import "fmt"

// NormalizeNode clears operand fields the opcode does not read, so that
// builders which leave them zero-valued (register 0) do not introduce
// phantom operands into dumps, liveness, or rename wiring.
func NormalizeNode(n *Node) {
	switch n.Op {
	case Const:
		n.A, n.B = NoReg, NoReg
	case Mov, Neg, Not, AddI, Ld, LdB, Br, Assert:
		n.B = NoReg
	case Jmp, Ret, Halt, Call:
		n.Dst, n.A, n.B = NoReg, NoReg, NoReg
	}
}

// Normalize applies NormalizeNode to every node of the program.
func (p *Program) Normalize() {
	for _, b := range p.Blocks {
		for i := range b.Body {
			NormalizeNode(&b.Body[i])
		}
		NormalizeNode(&b.Term)
	}
}

// Validate checks structural well-formedness of a program: every block has a
// real terminator, every referenced block and function exists, register
// numbers are in range, asserts only appear in bodies, and terminators only
// appear as terminators. The tools call it after every transformation so a
// broken rewrite fails loudly instead of miscomputing silently.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("ir: program has no functions")
	}
	if int(p.Entry) >= len(p.Funcs) {
		return fmt.Errorf("ir: entry function %d out of range", p.Entry)
	}
	for id, b := range p.Blocks {
		if b == nil {
			return fmt.Errorf("ir: nil block %d", id)
		}
		if b.ID != BlockID(id) {
			return fmt.Errorf("ir: block %d has ID %d", id, b.ID)
		}
		if int(b.Fn) >= len(p.Funcs) {
			return fmt.Errorf("ir: block %d has bad function %d", id, b.Fn)
		}
		for i := range b.Body {
			n := &b.Body[i]
			if err := p.checkNode(n, false); err != nil {
				return fmt.Errorf("ir: block %d node %d (%s): %w", id, i, n, err)
			}
		}
		if err := p.checkNode(&b.Term, true); err != nil {
			return fmt.Errorf("ir: block %d terminator (%s): %w", id, b.Term, err)
		}
		switch b.Term.Op {
		case Br, Call:
			if !p.validBlock(b.Fall) {
				return fmt.Errorf("ir: block %d: %s needs a valid Fall, got %d", id, b.Term.Op, b.Fall)
			}
		}
	}
	for _, f := range p.Funcs {
		if !p.validBlock(f.Entry) {
			return fmt.Errorf("ir: function %s has bad entry %d", f.Name, f.Entry)
		}
	}
	return nil
}

func (p *Program) validBlock(id BlockID) bool {
	return id >= 0 && int(id) < len(p.Blocks)
}

func validReg(r Reg, allowNone bool) bool {
	if r == NoReg {
		return allowNone
	}
	return r >= 0 && r < NumRegs
}

func (p *Program) checkNode(n *Node, isTerm bool) error {
	if n.Op == Nop || n.Op >= numOps {
		return fmt.Errorf("invalid opcode")
	}
	if n.Op.IsTerm() != isTerm {
		if isTerm {
			return fmt.Errorf("non-terminator used as terminator")
		}
		return fmt.Errorf("terminator in block body")
	}
	if n.Op.HasDst() && !validReg(n.Dst, false) {
		return fmt.Errorf("bad destination register %d", n.Dst)
	}
	switch n.Op {
	case Const, Halt, Ret:
		// no register sources
	case Jmp:
		if !p.validBlock(n.Target) {
			return fmt.Errorf("bad jump target %d", n.Target)
		}
	case Br, Assert:
		if !validReg(n.A, false) {
			return fmt.Errorf("bad condition register")
		}
		if !p.validBlock(n.Target) {
			return fmt.Errorf("bad target %d", n.Target)
		}
	case Call:
		if int(n.Callee) >= len(p.Funcs) || n.Callee < 0 {
			return fmt.Errorf("bad callee %d", n.Callee)
		}
	case Ld, LdB:
		if !validReg(n.A, false) {
			return fmt.Errorf("bad address register")
		}
	case St, StB:
		if !validReg(n.A, false) || !validReg(n.B, false) {
			return fmt.Errorf("bad store operands")
		}
	case Sys:
		if !validReg(n.A, true) || !validReg(n.B, true) {
			return fmt.Errorf("bad sys operands")
		}
	default:
		if !validReg(n.A, false) {
			return fmt.Errorf("bad A operand")
		}
		twoSrc := n.Op != Mov && n.Op != Neg && n.Op != Not && n.Op != AddI
		if twoSrc && !validReg(n.B, false) {
			return fmt.Errorf("bad B operand")
		}
	}
	return nil
}
