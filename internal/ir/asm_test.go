package ir

import (
	"strings"
	"testing"
)

const asmSample = `
# A hand-written node program: sum input bytes, emit the low byte.
program memsize=65536 entry=f0 database=4096
data 0 "\x07\x00\x00\x00"
func main (f0) args=0 frame=0 entry=b0
b0:
	r5 = const 0
	r6 = const 4096
	r7 = ld [r6+0]
	jmp b1
b1:
	r8 = const 0
	r9 = sys 1(r8, r-1)
	r10 = ge r9, r8
	br r10 -> b2 | fall b3
b2:
	r5 = add r5, r9
	jmp b1
b3:
	r11 = add r5, r7
	r12 = sys 2(r11, r-1)
	halt
`

func TestAssembleHandWritten(t *testing.T) {
	p, err := Assemble(asmSample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Funcs) != 1 || p.Funcs[0].Name != "main" {
		t.Fatalf("funcs = %v", p.Funcs)
	}
	if len(p.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(p.Blocks))
	}
	if p.Data[0] != 7 {
		t.Errorf("data[0] = %d, want 7", p.Data[0])
	}
	b0 := p.Blocks[0]
	if len(b0.Body) != 3 || b0.Term.Op != Jmp || b0.Term.Target != 1 {
		t.Errorf("b0 parsed wrong: %v / %v", b0.Body, b0.Term)
	}
	b1 := p.Blocks[1]
	if b1.Term.Op != Br || b1.Term.Target != 2 || b1.Fall != 3 {
		t.Errorf("b1 terminator wrong: %v fall %d", b1.Term, b1.Fall)
	}
	if b1.Body[1].Op != Sys || b1.Body[1].Imm != 1 || b1.Body[1].B != NoReg {
		t.Errorf("sys node wrong: %v", b1.Body[1])
	}
}

func TestDisassembleAssembleRoundTrip(t *testing.T) {
	p, err := Assemble(asmSample)
	if err != nil {
		t.Fatal(err)
	}
	text1 := Disassemble(p)
	p2, err := Assemble(text1)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text1)
	}
	text2 := Disassemble(p2)
	if text1 != text2 {
		t.Fatalf("round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text1, text2)
	}
}

func TestAssembleGapsAndAnnotations(t *testing.T) {
	src := `
program memsize=65536 entry=f0 database=4096
func main (f0) args=0 frame=0 entry=b0
b0:
	r5 = const 1
	jmp b7
b7: (from b0)
	assert r5==true else b3
	halt
b3:
	halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Blocks) != 8 {
		t.Fatalf("arena size %d, want 8 (holes filled)", len(p.Blocks))
	}
	if p.Blocks[7].Orig != 0 {
		t.Errorf("annotation lost: Orig = %d, want 0", p.Blocks[7].Orig)
	}
	// Holes are inert.
	for _, id := range []BlockID{1, 2, 4, 5, 6} {
		if p.Blocks[id].Term.Op != Halt {
			t.Errorf("hole b%d not inert", id)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"no header", "func main (f0) entry=b0\nb0:\n\thalt\n"},
		{"bad entry", "program memsize=1024 entry=f9 database=0\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\thalt\n"},
		{"no terminator", "program memsize=1024 entry=f0 database=0\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\tr5 = const 1\n"},
		{"bad reg", "program memsize=1024 entry=f0 database=0\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\tr99 = const 1\n\thalt\n"},
		{"dup block", "program memsize=1024 entry=f0 database=0\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\thalt\nb0:\n\thalt\n"},
		{"garbage node", "program memsize=1024 entry=f0 database=0\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\twibble\n\thalt\n"},
		{"bad branch", "program memsize=1024 entry=f0 database=0\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\tbr r5 b1\n"},
		{"sparse funcs", "program memsize=1024 entry=f0 database=0\nfunc main (f3) args=0 frame=0 entry=b0\nb0:\n\thalt\n"},
		{"bad data", "program memsize=1024 entry=f0 database=0\ndata 0 notquoted\nfunc main (f0) args=0 frame=0 entry=b0\nb0:\n\thalt\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Assemble(c.src); err == nil {
				t.Errorf("Assemble accepted %q", c.src)
			}
		})
	}
}

func TestDisassembleSkipsZeroRuns(t *testing.T) {
	p := makeTestProgram()
	p.Data = make([]byte, 4096)
	p.Data[100] = 0xAB
	text := Disassemble(p)
	if strings.Count(text, "data ") != 1 {
		t.Errorf("expected exactly one data chunk:\n%s", text)
	}
	p2, err := Assemble(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2.Data) <= 100 || p2.Data[100] != 0xAB {
		t.Error("sparse data lost in round trip")
	}
}
