package ir

// System call numbers. Sys nodes carry the number in Imm. The host executes
// them outside the timed simulation, mirroring the paper's treatment of
// system calls (executed by the host operating system, excluded from the
// collected statistics).
const (
	// SysGetc reads one byte from input stream A (0 or 1) and returns it,
	// or -1 at end of stream.
	SysGetc = 1

	// SysPutc writes the low byte of A to the output stream and returns 0.
	SysPutc = 2
)
