package ir

// Op is a node opcode. The set is deliberately small and RISC-like: it is
// the intermediate form the translating loader decompiles into, not an
// instruction set a real front end would expose.
type Op uint8

const (
	// Nop never appears in generated code; the zero value is invalid on
	// purpose so that forgotten initialization is caught by Validate.
	Nop Op = iota

	// ALU-slot nodes.
	Const // Dst = Imm
	Mov   // Dst = A
	Add   // Dst = A + B
	Sub   // Dst = A - B
	Mul   // Dst = A * B
	Div   // Dst = A / B (quotient 0 when B == 0)
	Rem   // Dst = A % B (remainder A when B == 0)
	And   // Dst = A & B
	Or    // Dst = A | B
	Xor   // Dst = A ^ B
	Shl   // Dst = A << (B & 31)
	Shr   // Dst = A >> (B & 31), arithmetic
	AddI  // Dst = A + Imm
	Neg   // Dst = -A
	Not   // Dst = ^A
	Eq    // Dst = A == B ? 1 : 0
	Ne    // Dst = A != B ? 1 : 0
	Lt    // Dst = A <  B ? 1 : 0 (signed)
	Le    // Dst = A <= B ? 1 : 0 (signed)
	Gt    // Dst = A >  B ? 1 : 0 (signed)
	Ge    // Dst = A >= B ? 1 : 0 (signed)

	// Memory-slot nodes. Effective address is A + Imm.
	Ld  // Dst = mem32[A+Imm]
	LdB // Dst = zero-extended mem8[A+Imm]
	St  // mem32[A+Imm] = B
	StB // mem8[A+Imm] = low byte of B

	// Control. Br/Jmp/Call/Ret/Halt are terminators; Assert appears in
	// block bodies of enlarged code and occupies an ALU slot.
	Br     // if A != 0 goto Target else fall through
	Jmp    // goto Target
	Call   // call Callee; continue at the block's Fall on return
	Ret    // return to caller
	Halt   // end of program
	Assert // fault to Target unless (A != 0) == Expect

	// Sys is a system call executed by the host outside the timed
	// simulation (the paper's statistics are user-level only). It occupies
	// an ALU slot and is never executed speculatively.
	Sys // Dst = syscall Imm (A, B)

	numOps
)

var opNames = [...]string{
	Nop: "nop", Const: "const", Mov: "mov", Add: "add", Sub: "sub",
	Mul: "mul", Div: "div", Rem: "rem", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", AddI: "addi", Neg: "neg", Not: "not",
	Eq: "eq", Ne: "ne", Lt: "lt", Le: "le", Gt: "gt", Ge: "ge",
	Ld: "ld", LdB: "ldb", St: "st", StB: "stb",
	Br: "br", Jmp: "jmp", Call: "call", Ret: "ret", Halt: "halt",
	Assert: "assert", Sys: "sys",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// IsMem reports whether the node occupies a memory slot of a multinodeword.
func (op Op) IsMem() bool { return op >= Ld && op <= StB }

// IsLoad reports whether the node reads memory.
func (op Op) IsLoad() bool { return op == Ld || op == LdB }

// IsStore reports whether the node writes memory.
func (op Op) IsStore() bool { return op == St || op == StB }

// IsTerm reports whether the opcode is a block terminator.
func (op Op) IsTerm() bool { return op >= Br && op <= Halt }

// IsPure reports whether the node has no side effects beyond writing Dst,
// so it may be eliminated when Dst is dead and duplicated freely.
func (op Op) IsPure() bool { return op >= Const && op <= Ge }

// HasDst reports whether the opcode writes a destination register.
func (op Op) HasDst() bool {
	return op.IsPure() || op.IsLoad() || op == Sys
}

// Commutes reports whether swapping A and B preserves the result.
func (op Op) Commutes() bool {
	switch op {
	case Add, Mul, And, Or, Xor, Eq, Ne:
		return true
	}
	return false
}

// Uses appends the registers the node reads to dst and returns it.
func (n *Node) Uses(dst []Reg) []Reg {
	if n.A != NoReg {
		dst = append(dst, n.A)
	}
	if n.B != NoReg {
		dst = append(dst, n.B)
	}
	return dst
}

// BadOpError reports an opcode handed to an evaluator that cannot execute
// it — a corrupt or mis-slotted node in an image.
type BadOpError struct{ Op Op }

func (e *BadOpError) Error() string {
	return "ir: EvalALU on non-pure op " + e.Op.String()
}

// EvalALU computes the value of a pure ALU node given its operand values.
// All arithmetic is 32-bit two's complement; division by zero is defined
// (quotient 0, remainder A) so that wrong-path speculative execution can
// never crash the simulator. Non-pure opcodes return a *BadOpError.
func EvalALU(op Op, a, b int32, imm int64) (int32, error) {
	switch op {
	case Const:
		return int32(imm), nil
	case Mov:
		return a, nil
	case Add:
		return a + b, nil
	case Sub:
		return a - b, nil
	case Mul:
		return a * b, nil
	case Div:
		if b == 0 {
			return 0, nil
		}
		if a == -1<<31 && b == -1 {
			return a, nil
		}
		return a / b, nil
	case Rem:
		if b == 0 {
			return a, nil
		}
		if a == -1<<31 && b == -1 {
			return 0, nil
		}
		return a % b, nil
	case And:
		return a & b, nil
	case Or:
		return a | b, nil
	case Xor:
		return a ^ b, nil
	case Shl:
		return a << (uint32(b) & 31), nil
	case Shr:
		return a >> (uint32(b) & 31), nil
	case AddI:
		return a + int32(imm), nil
	case Neg:
		return -a, nil
	case Not:
		return ^a, nil
	case Eq:
		return b2i(a == b), nil
	case Ne:
		return b2i(a != b), nil
	case Lt:
		return b2i(a < b), nil
	case Le:
		return b2i(a <= b), nil
	case Gt:
		return b2i(a > b), nil
	case Ge:
		return b2i(a >= b), nil
	}
	return 0, &BadOpError{op}
}

func b2i(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
