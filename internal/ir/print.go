package ir

import (
	"fmt"
	"strings"
)

// Dump renders the whole program as readable text, for debugging and for
// golden tests of the compiler and the loader.
func (p *Program) Dump() string {
	var sb strings.Builder
	for _, f := range p.Funcs {
		sb.WriteString(p.DumpFunc(f))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// DumpFunc renders one function.
func (p *Program) DumpFunc(f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (f%d) args=%d frame=%d entry=b%d\n",
		f.Name, f.ID, f.NumArgs, f.FrameSize, f.Entry)
	for _, id := range f.Blocks {
		b := p.Blocks[id]
		fmt.Fprintf(&sb, "b%d:", b.ID)
		if b.Orig != b.ID {
			fmt.Fprintf(&sb, " (from b%d)", b.Orig)
		}
		sb.WriteByte('\n')
		for i := range b.Body {
			fmt.Fprintf(&sb, "\t%s\n", &b.Body[i])
		}
		fmt.Fprintf(&sb, "\t%s", &b.Term)
		if b.Fall != NoBlock {
			fmt.Fprintf(&sb, " | fall b%d", b.Fall)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
