package ir

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	memOps := map[Op]bool{Ld: true, LdB: true, St: true, StB: true}
	termOps := map[Op]bool{Br: true, Jmp: true, Call: true, Ret: true, Halt: true}
	for op := Op(1); op < numOps; op++ {
		if got := op.IsMem(); got != memOps[op] {
			t.Errorf("%s.IsMem() = %v, want %v", op, got, memOps[op])
		}
		if got := op.IsTerm(); got != termOps[op] {
			t.Errorf("%s.IsTerm() = %v, want %v", op, got, termOps[op])
		}
		if op.IsLoad() && !op.IsMem() {
			t.Errorf("%s is a load but not a memory op", op)
		}
		if op.IsStore() && !op.IsMem() {
			t.Errorf("%s is a store but not a memory op", op)
		}
		if op.IsPure() && (op.IsMem() || op.IsTerm() || op == Assert || op == Sys) {
			t.Errorf("%s claims purity", op)
		}
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		if op.String() == "op?" {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if Op(200).String() != "op?" {
		t.Errorf("out-of-range opcode should print op?")
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int32
		imm  int64
		want int32
	}{
		{Const, 0, 0, 42, 42},
		{Const, 0, 0, math.MaxInt64, -1}, // truncates to 32 bits
		{Mov, 7, 0, 0, 7},
		{Add, 2, 3, 0, 5},
		{Add, math.MaxInt32, 1, 0, math.MinInt32}, // wraps
		{Sub, 2, 3, 0, -1},
		{Mul, -4, 3, 0, -12},
		{Div, 7, 2, 0, 3},
		{Div, -7, 2, 0, -3},
		{Div, 7, 0, 0, 0},                          // defined: no crash
		{Div, math.MinInt32, -1, 0, math.MinInt32}, // overflow defined
		{Rem, 7, 3, 0, 1},
		{Rem, 7, 0, 0, 7},
		{Rem, math.MinInt32, -1, 0, 0},
		{And, 0b1100, 0b1010, 0, 0b1000},
		{Or, 0b1100, 0b1010, 0, 0b1110},
		{Xor, 0b1100, 0b1010, 0, 0b0110},
		{Shl, 1, 4, 0, 16},
		{Shl, 1, 36, 0, 16}, // shift count masked to 5 bits
		{Shr, -16, 2, 0, -4},
		{AddI, 10, 0, -3, 7},
		{Neg, 5, 0, 0, -5},
		{Not, 0, 0, 0, -1},
		{Eq, 3, 3, 0, 1},
		{Eq, 3, 4, 0, 0},
		{Ne, 3, 4, 0, 1},
		{Lt, -1, 0, 0, 1},
		{Le, 0, 0, 0, 1},
		{Gt, 1, 0, 0, 1},
		{Ge, -1, 0, 0, 0},
	}
	for _, c := range cases {
		if got := mustEval(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("EvalALU(%s, %d, %d, %d) = %d, want %d", c.op, c.a, c.b, c.imm, got, c.want)
		}
	}
}

// mustEval evaluates a known-pure op; the error path has its own test.
func mustEval(op Op, a, b int32, imm int64) int32 {
	v, err := EvalALU(op, a, b, imm)
	if err != nil {
		panic(err)
	}
	return v
}

func TestEvalALUErrorsOnImpureOp(t *testing.T) {
	for _, op := range []Op{Nop, Ld, LdB, St, StB, Br, Jmp, Call, Ret, Halt, Assert, Sys} {
		v, err := EvalALU(op, 7, 9, 3)
		if err == nil {
			t.Fatalf("EvalALU(%s, ...) = %d, want *BadOpError", op, v)
		}
		be, ok := err.(*BadOpError)
		if !ok {
			t.Fatalf("EvalALU(%s, ...) error is %T, want *BadOpError", op, err)
		}
		if be.Op != op {
			t.Errorf("BadOpError.Op = %s, want %s", be.Op, op)
		}
	}
}

// Property: comparison operators return only 0 or 1, and each pairs
// correctly with its negation.
func TestComparisonProperties(t *testing.T) {
	f := func(a, b int32) bool {
		eq := mustEval(Eq, a, b, 0)
		ne := mustEval(Ne, a, b, 0)
		lt := mustEval(Lt, a, b, 0)
		ge := mustEval(Ge, a, b, 0)
		le := mustEval(Le, a, b, 0)
		gt := mustEval(Gt, a, b, 0)
		for _, v := range []int32{eq, ne, lt, ge, le, gt} {
			if v != 0 && v != 1 {
				return false
			}
		}
		return eq+ne == 1 && lt+ge == 1 && le+gt == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: commutative ops really commute.
func TestCommutativityProperty(t *testing.T) {
	ops := []Op{Add, Mul, And, Or, Xor, Eq, Ne}
	f := func(a, b int32) bool {
		for _, op := range ops {
			if !op.Commutes() {
				return false
			}
			if mustEval(op, a, b, 0) != mustEval(op, b, a, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Div/Rem satisfy a*q + r == a when b != 0 (Go division identity).
func TestDivRemIdentity(t *testing.T) {
	f := func(a, b int32) bool {
		if b == 0 {
			return mustEval(Div, a, b, 0) == 0 && mustEval(Rem, a, b, 0) == a
		}
		if a == math.MinInt32 && b == -1 {
			return true // defined separately to avoid overflow
		}
		q := mustEval(Div, a, b, 0)
		r := mustEval(Rem, a, b, 0)
		return q*b+r == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func makeTestProgram() *Program {
	p := &Program{MemSize: 1 << 20}
	f := &Func{ID: 0, Name: "main"}
	p.Funcs = append(p.Funcs, f)
	b0 := &Block{
		Body: []Node{
			{Op: Const, Dst: 2, Imm: 1},
			{Op: Add, Dst: 3, A: 2, B: 2},
		},
		Term: Node{Op: Br, A: 3, Target: 1},
		Fall: 1,
	}
	p.AddBlock(0, b0)
	b1 := &Block{Term: Node{Op: Halt}, Fall: NoBlock}
	p.AddBlock(0, b1)
	f.Entry = 0
	return p
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := makeTestProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateRejects(t *testing.T) {
	break1 := func(p *Program) { p.Blocks[0].Body[0].Op = Nop }
	break2 := func(p *Program) { p.Blocks[0].Term = Node{Op: Add, Dst: 1, A: 1, B: 1} }
	break3 := func(p *Program) { p.Blocks[0].Body[0].Dst = NumRegs }
	break4 := func(p *Program) { p.Blocks[0].Term.Target = 99 }
	break5 := func(p *Program) { p.Blocks[0].Fall = 99 }
	break6 := func(p *Program) { p.Blocks[0].Body = append(p.Blocks[0].Body, Node{Op: Jmp, Target: 1}) }
	break7 := func(p *Program) { p.Funcs[0].Entry = 99 }
	break8 := func(p *Program) { p.Blocks[1].Term = Node{Op: Call, Callee: 42} }
	for i, breakIt := range []func(*Program){break1, break2, break3, break4, break5, break6, break7, break8} {
		p := makeTestProgram()
		breakIt(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: Validate() accepted a broken program", i+1)
		}
	}
}

func TestBlockSuccs(t *testing.T) {
	p := makeTestProgram()
	succs := p.Blocks[0].Succs()
	if len(succs) != 2 || succs[0] != 1 || succs[1] != 1 {
		t.Errorf("Succs() = %v, want [1 1]", succs)
	}
	if got := p.Blocks[1].Succs(); got != nil {
		t.Errorf("halt block Succs() = %v, want nil", got)
	}
	jb := &Block{Term: Node{Op: Jmp, Target: 0}, Fall: NoBlock}
	p.AddBlock(0, jb)
	if got := jb.Succs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("jmp Succs() = %v, want [0]", got)
	}
}

func TestStaticMixAndNumNodes(t *testing.T) {
	p := makeTestProgram()
	if got := p.NumNodes(); got != 4 {
		t.Errorf("NumNodes() = %d, want 4", got)
	}
	mem, alu := p.StaticMix()
	if mem != 0 || alu != 4 {
		t.Errorf("StaticMix() = (%d, %d), want (0, 4)", mem, alu)
	}
	p.Blocks[0].Body = append(p.Blocks[0].Body, Node{Op: Ld, Dst: 4, A: 2})
	mem, alu = p.StaticMix()
	if mem != 1 || alu != 4 {
		t.Errorf("StaticMix() = (%d, %d), want (1, 4)", mem, alu)
	}
}

func TestDumpIsStable(t *testing.T) {
	p := makeTestProgram()
	d1, d2 := p.Dump(), p.Dump()
	if d1 != d2 {
		t.Error("Dump() not deterministic")
	}
	if len(d1) == 0 {
		t.Error("Dump() empty")
	}
}

func TestFuncByName(t *testing.T) {
	p := makeTestProgram()
	if p.FuncByName("main") == nil {
		t.Error("FuncByName(main) = nil")
	}
	if p.FuncByName("nope") != nil {
		t.Error("FuncByName(nope) != nil")
	}
}

func TestNodeUses(t *testing.T) {
	n := Node{Op: Add, Dst: 1, A: 2, B: 3}
	if got := n.Uses(nil); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("Uses = %v", got)
	}
	c := Node{Op: Const, Dst: 1, A: NoReg, B: NoReg}
	if got := c.Uses(nil); len(got) != 0 {
		t.Errorf("const Uses = %v, want empty", got)
	}
}
