package bench

// Sort returns the paper's first benchmark: sort lines in a file. The MiniC
// program reads all of stream 0, splits it into lines, quicksorts an array
// of line pointers (with insertion sort below a cutoff, the classic
// implementation), and writes the lines back out in order.
func Sort() *Benchmark {
	return &Benchmark{
		Name:   "sort",
		Source: sortSrc,
		Inputs: func(set int) ([]byte, []byte) {
			r := newRng(uint32(0x5011 * set))
			return r.text(140 + 20*set), nil
		},
	}
}

const sortSrc = `
char text[65536];
char *lines[4096];
int nlines = 0;

int readall() {
	int n = 0;
	int c = getc(0);
	while (c >= 0 && n < 65000) {
		text[n] = c;
		n++;
		c = getc(0);
	}
	text[n] = 0;
	return n;
}

void split(int n) {
	int i = 0;
	while (i < n && nlines < 4095) {
		lines[nlines] = text + i;
		nlines++;
		while (i < n && text[i] != '\n') i++;
		if (i < n) {
			text[i] = 0;   // terminate the line
			i++;
		}
	}
}

int cmp(char *a, char *b) {
	while (*a && *a == *b) {
		a++;
		b++;
	}
	return *a - *b;
}

void isort(int lo, int hi) {
	int i;
	for (i = lo + 1; i <= hi; i++) {
		char *key = lines[i];
		int j = i - 1;
		while (j >= lo && cmp(lines[j], key) > 0) {
			lines[j + 1] = lines[j];
			j--;
		}
		lines[j + 1] = key;
	}
}

void qsortl(int lo, int hi) {
	if (hi - lo < 8) {
		isort(lo, hi);
		return;
	}
	char *pivot = lines[lo + (hi - lo) / 2];
	int i = lo;
	int j = hi;
	while (i <= j) {
		while (cmp(lines[i], pivot) < 0) i++;
		while (cmp(lines[j], pivot) > 0) j--;
		if (i <= j) {
			char *t = lines[i];
			lines[i] = lines[j];
			lines[j] = t;
			i++;
			j--;
		}
	}
	if (lo < j) qsortl(lo, j);
	if (i < hi) qsortl(i, hi);
}

void putline(char *s) {
	while (*s) {
		putc(*s);
		s++;
	}
	putc('\n');
}

int main() {
	int n = readall();
	int i;
	split(n);
	if (nlines > 0) qsortl(0, nlines - 1);
	for (i = 0; i < nlines; i++) putline(lines[i]);
	return 0;
}
`
