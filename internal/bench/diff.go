package bench

// Diff returns the paper's third benchmark: find differences between two
// files. Stream 0 is the old file and stream 1 the new file; the program
// computes a longest-common-subsequence table over the lines (the classic
// O(n*m) dynamic program) and emits an edit script ("<" for deletions,
// ">" for insertions).
func Diff() *Benchmark {
	return &Benchmark{
		Name:   "diff",
		Source: diffSrc,
		Inputs: func(set int) ([]byte, []byte) {
			r := newRng(uint32(0xd1ff * set))
			n := 60 + 10*set
			a := make([][]byte, 0, n)
			for i := 0; i < n; i++ {
				a = append(a, r.line(nil))
			}
			// The new file: mutate ~25% of lines (delete, insert, replace).
			b := make([][]byte, 0, n+8)
			for _, ln := range a {
				switch r.intn(12) {
				case 0: // delete
				case 1: // replace
					b = append(b, r.line(nil))
				case 2: // insert before
					b = append(b, r.line(nil), ln)
				default:
					b = append(b, ln)
				}
			}
			flat := func(lines [][]byte) []byte {
				var out []byte
				for _, ln := range lines {
					out = append(out, ln...)
				}
				return out
			}
			return flat(a), flat(b)
		},
	}
}

const diffSrc = `
char texta[32768];
char textb[32768];
char *la[160];
char *lb[160];
int na = 0;
int nb = 0;
int lcs[26244];   // (160+2)*(160+2) is too big; use (161)*(161) windowed below
int opsA[320];
int opsB[320];

int readfile(int stream, char *buf, char **lines, int maxl) {
	int n = 0;
	int nl = 0;
	int c = getc(stream);
	lines[0] = buf;
	while (c >= 0 && n < 32000 && nl < maxl - 1) {
		if (c == '\n') {
			buf[n] = 0;
			n++;
			nl++;
			lines[nl] = buf + n;
		} else {
			buf[n] = c;
			n++;
		}
		c = getc(stream);
	}
	buf[n] = 0;
	return nl;
}

int streq(char *a, char *b) {
	while (*a && *a == *b) {
		a++;
		b++;
	}
	return *a == *b;
}

void putline(char *mark, char *s) {
	putc(mark[0]);
	putc(' ');
	while (*s) {
		putc(*s);
		s++;
	}
	putc('\n');
}

int idx(int i, int j) {
	return i * 161 + j;
}

int main() {
	int i;
	int j;
	na = readfile(0, texta, la, 160);
	nb = readfile(1, textb, lb, 160);

	// LCS lengths, bottom-up.
	for (i = na; i >= 0; i--) {
		for (j = nb; j >= 0; j--) {
			if (i >= na || j >= nb) {
				lcs[idx(i, j)] = 0;
			} else if (streq(la[i], lb[j])) {
				lcs[idx(i, j)] = lcs[idx(i + 1, j + 1)] + 1;
			} else {
				int down = lcs[idx(i + 1, j)];
				int right = lcs[idx(i, j + 1)];
				if (down >= right) lcs[idx(i, j)] = down;
				else lcs[idx(i, j)] = right;
			}
		}
	}

	// Walk the table emitting the edit script.
	i = 0;
	j = 0;
	while (i < na && j < nb) {
		if (streq(la[i], lb[j])) {
			i++;
			j++;
		} else if (lcs[idx(i + 1, j)] >= lcs[idx(i, j + 1)]) {
			putline("<", la[i]);
			i++;
		} else {
			putline(">", lb[j]);
			j++;
		}
	}
	while (i < na) {
		putline("<", la[i]);
		i++;
	}
	while (j < nb) {
		putline(">", lb[j]);
		j++;
	}
	return 0;
}
`
