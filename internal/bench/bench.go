// Package bench provides the five benchmark programs of the paper's
// evaluation — sort, grep, diff, cpp, and compress — re-implemented in
// MiniC, together with deterministic generators for the two input sets each
// benchmark needs (set 1 profiles and drives enlargement-file creation; set
// 2 is measured, so the branch statistics are not overly biased — the
// paper's methodology).
package bench

import (
	"sync"

	"fgpsim/internal/ir"
	"fgpsim/internal/minic"
)

// Benchmark is one of the paper's five UNIX-utility workloads.
type Benchmark struct {
	Name   string
	Source string

	// Inputs returns the two input streams for the given input set (1 or
	// 2). Stream 1 is nil for single-input benchmarks.
	Inputs func(set int) (in0, in1 []byte)

	once sync.Once
	prog *ir.Program
	err  error
}

// Program compiles (once) and returns the benchmark's node-IR program.
func (b *Benchmark) Program() (*ir.Program, error) {
	b.once.Do(func() {
		b.prog, b.err = minic.Compile(b.Name+".mc", b.Source, minic.Options{Optimize: true})
	})
	return b.prog, b.err
}

// All returns the five benchmarks in the paper's order.
func All() []*Benchmark {
	return []*Benchmark{Sort(), Grep(), Diff(), Cpp(), Compress()}
}

// ByName returns the named benchmark, or nil.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// rng is a small deterministic generator (xorshift32) so input sets are
// reproducible across runs and platforms.
type rng uint32

func newRng(seed uint32) *rng {
	r := rng(seed*2654435761 + 1)
	return &r
}

func (r *rng) next() uint32 {
	x := uint32(*r)
	x ^= x << 13
	x ^= x >> 17
	x ^= x << 5
	*r = rng(x)
	return x
}

func (r *rng) intn(n int) int { return int(r.next() % uint32(n)) }

var words = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
	"window", "branch", "issue", "node", "cache", "miss", "block", "fault",
	"static", "dynamic", "schedule", "predict", "retire", "squash",
	"memory", "latency", "port", "register", "buffer", "trace", "profile",
}

// line generates one pseudo-text line of 1..8 words.
func (r *rng) line(buf []byte) []byte {
	n := 1 + r.intn(8)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ' ')
		}
		buf = append(buf, words[r.intn(len(words))]...)
		if r.intn(6) == 0 {
			buf = append(buf, byte('0'+r.intn(10)))
		}
	}
	return append(buf, '\n')
}

func (r *rng) text(lines int) []byte {
	var buf []byte
	for i := 0; i < lines; i++ {
		buf = r.line(buf)
	}
	return buf
}
