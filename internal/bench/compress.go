package bench

// Compress returns the paper's fifth benchmark: file compression. The
// program is an LZW compressor in the style of compress(1): 12-bit codes, a
// hash table dictionary with linear probing, codes emitted as two bytes.
func Compress() *Benchmark {
	return &Benchmark{
		Name:   "compress",
		Source: compressSrc,
		Inputs: func(set int) ([]byte, []byte) {
			r := newRng(uint32(0xc0de * set))
			// Text with repetition compresses interestingly.
			base := r.text(40)
			var in []byte
			for len(in) < 2600+400*set {
				if r.intn(3) == 0 {
					in = r.line(in)
				} else {
					start := r.intn(len(base) / 2)
					end := start + 40 + r.intn(120)
					if end > len(base) {
						end = len(base)
					}
					in = append(in, base[start:end]...)
				}
			}
			return in, nil
		},
	}
}

const compressSrc = `
int htKey[8192];
int htVal[8192];
int nextCode = 256;

int hash(int key) {
	int h = key * 40503;
	h = h ^ (h >> 9);
	return h & 8191;
}

// find returns the dictionary slot for key; the slot holds -1 if absent.
int find(int key) {
	int h = hash(key);
	while (htKey[h] != -1 && htKey[h] != key) {
		h = (h + 1) & 8191;
	}
	return h;
}

void emit(int code) {
	putc((code >> 8) & 255);
	putc(code & 255);
}

int main() {
	int i;
	int w;
	int c;
	for (i = 0; i < 8192; i++) {
		htKey[i] = -1;
		htVal[i] = 0;
	}
	w = getc(0);
	if (w < 0) return 0;
	c = getc(0);
	while (c >= 0) {
		int key = (w << 8) | c;
		int slot = find(key);
		if (htKey[slot] == key) {
			w = htVal[slot];
		} else {
			emit(w);
			if (nextCode < 4096) {
				htKey[slot] = key;
				htVal[slot] = nextCode;
				nextCode++;
			}
			w = c;
		}
		c = getc(0);
	}
	emit(w);
	return 0;
}
`
