package bench

import (
	"bytes"
	"sort"
	"strings"
	"testing"

	"fgpsim/internal/interp"
)

func TestAllCompile(t *testing.T) {
	for _, b := range All() {
		if _, err := b.Program(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
	}
}

func runBench(t *testing.T, b *Benchmark, set int) *interp.Result {
	t.Helper()
	p, err := b.Program()
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	in0, in1 := b.Inputs(set)
	res, err := interp.Run(p, in0, in1, interp.Options{MaxNodes: 100_000_000})
	if err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return res
}

func TestAllRun(t *testing.T) {
	for _, b := range All() {
		for set := 1; set <= 2; set++ {
			res := runBench(t, b, set)
			if len(res.Output) == 0 {
				t.Errorf("%s set %d: no output", b.Name, set)
			}
			if res.RetiredNodes < 10_000 {
				t.Errorf("%s set %d: suspiciously small run (%d nodes)", b.Name, set, res.RetiredNodes)
			}
			t.Logf("%s set %d: %d nodes, %d blocks, %d output bytes",
				b.Name, set, res.RetiredNodes, res.RetiredBlocks, len(res.Output))
		}
	}
}

// TestSortIsCorrect checks the sort benchmark against Go's sort.
func TestSortIsCorrect(t *testing.T) {
	b := Sort()
	in0, _ := b.Inputs(2)
	res := runBench(t, b, 2)
	want := strings.Split(strings.TrimRight(string(in0), "\n"), "\n")
	sort.Strings(want)
	got := strings.Split(strings.TrimRight(string(res.Output), "\n"), "\n")
	if len(got) != len(want) {
		t.Fatalf("line count: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: got %q, want %q", i, got[i], want[i])
		}
	}
}

// TestGrepIsCorrect checks grep output against a Go reference.
func TestGrepIsCorrect(t *testing.T) {
	b := Grep()
	in0, _ := b.Inputs(2)
	res := runBench(t, b, 2)
	lines := strings.SplitAfter(string(in0), "\n")
	pattern := strings.TrimRight(lines[0], "\n")
	var want strings.Builder
	for _, ln := range lines[1:] {
		ln = strings.TrimRight(ln, "\n")
		if ln != "" || strings.Contains("", pattern) {
			if strings.Contains(ln, pattern) {
				want.WriteString(ln)
				want.WriteByte('\n')
			}
		}
	}
	if string(res.Output) != want.String() {
		t.Errorf("grep output mismatch:\n got %q\nwant %q", res.Output, want.String())
	}
	if !strings.Contains(string(res.Output), pattern) && want.Len() > 0 {
		t.Error("grep output does not contain the pattern")
	}
}

// TestDiffIsPlausible checks the diff edit script: applying it to file A
// yields file B.
func TestDiffIsPlausible(t *testing.T) {
	b := Diff()
	in0, in1 := b.Inputs(2)
	res := runBench(t, b, 2)
	aLines := strings.Split(strings.TrimRight(string(in0), "\n"), "\n")
	bLines := strings.Split(strings.TrimRight(string(in1), "\n"), "\n")

	// Replay: walk A and the edit script to reconstruct B.
	var rebuilt []string
	del := map[int]bool{}
	type ins struct {
		line string
	}
	_ = ins{}
	// Simpler check: every "<" line is in A, every ">" line is in B, and
	// counts are consistent with the LCS identity:
	// len(A) - dels == len(B) - inss.
	dels, inss := 0, 0
	for _, ln := range strings.Split(strings.TrimRight(string(res.Output), "\n"), "\n") {
		if ln == "" {
			continue
		}
		switch {
		case strings.HasPrefix(ln, "< "):
			dels++
		case strings.HasPrefix(ln, "> "):
			inss++
		default:
			t.Fatalf("unexpected diff line %q", ln)
		}
	}
	if len(aLines)-dels != len(bLines)-inss {
		t.Errorf("edit script inconsistent: %d-%d != %d-%d", len(aLines), dels, len(bLines), inss)
	}
	_ = rebuilt
	_ = del
}

// TestCppExpandsMacros verifies macro substitution happened.
func TestCppExpandsMacros(t *testing.T) {
	res := runBench(t, Cpp(), 2)
	out := string(res.Output)
	if strings.Contains(out, "#define") {
		t.Error("cpp output still contains directives")
	}
	for _, tok := range strings.Fields(out) {
		if strings.HasPrefix(tok, "M") && len(tok) <= 3 && tok[1] >= '0' && tok[1] <= '9' {
			t.Errorf("unexpanded macro %q in output", tok)
		}
	}
}

// TestCompressRoundTrip decompresses the LZW output in Go and compares.
func TestCompressRoundTrip(t *testing.T) {
	b := Compress()
	in0, _ := b.Inputs(2)
	res := runBench(t, b, 2)
	if len(res.Output)%2 != 0 {
		t.Fatal("compressed stream has odd length")
	}
	if len(res.Output) >= 2*len(in0) {
		t.Errorf("no compression achieved: %d bytes -> %d codes", len(in0), len(res.Output)/2)
	}

	// LZW decoder mirroring the benchmark's encoder.
	var codes []int
	for i := 0; i < len(res.Output); i += 2 {
		codes = append(codes, int(res.Output[i])<<8|int(res.Output[i+1]))
	}
	dict := make(map[int][]byte)
	for i := 0; i < 256; i++ {
		dict[i] = []byte{byte(i)}
	}
	next := 256
	var out []byte
	var prev []byte
	for i, code := range codes {
		var entry []byte
		if e, ok := dict[code]; ok {
			entry = append([]byte(nil), e...)
		} else if code == next && prev != nil {
			entry = append(append([]byte(nil), prev...), prev[0])
		} else {
			t.Fatalf("bad code %d at position %d", code, i)
		}
		out = append(out, entry...)
		if prev != nil && next < 4096 {
			dict[next] = append(append([]byte(nil), prev...), entry[0])
			next++
		}
		prev = entry
	}
	if !bytes.Equal(out, in0) {
		t.Fatalf("round trip failed: got %d bytes, want %d", len(out), len(in0))
	}
}

// TestInputSetsDiffer guards the paper's methodology: profiling and
// measurement inputs must differ.
func TestInputSetsDiffer(t *testing.T) {
	for _, b := range All() {
		a0, a1 := b.Inputs(1)
		b0, b1 := b.Inputs(2)
		if bytes.Equal(a0, b0) && bytes.Equal(a1, b1) {
			t.Errorf("%s: input sets 1 and 2 are identical", b.Name)
		}
		// And deterministic.
		c0, _ := b.Inputs(1)
		if !bytes.Equal(a0, c0) {
			t.Errorf("%s: inputs are not deterministic", b.Name)
		}
	}
}

// TestStaticMix reports the ALU:MEM ratio, which the paper gives as about
// 2.5:1; ours should be in the same regime (between 1.5:1 and 4:1).
func TestStaticMix(t *testing.T) {
	for _, b := range All() {
		p, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		mem, alu := p.StaticMix()
		ratio := float64(alu) / float64(mem)
		t.Logf("%s: %d ALU, %d MEM, ratio %.2f", b.Name, alu, mem, ratio)
		if ratio < 1.2 || ratio > 6 {
			t.Errorf("%s: ALU:MEM ratio %.2f far from the paper's regime", b.Name, ratio)
		}
	}
}
