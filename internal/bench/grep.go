package bench

// Grep returns the paper's second benchmark: print lines with a matching
// string. Stream 0 carries the pattern on its first line followed by the
// text to search; matching uses the classic naive substring scan.
func Grep() *Benchmark {
	return &Benchmark{
		Name:   "grep",
		Source: grepSrc,
		Inputs: func(set int) ([]byte, []byte) {
			r := newRng(uint32(0x93e9 * set))
			pattern := words[r.intn(len(words))]
			in := append([]byte(pattern), '\n')
			in = append(in, r.text(260+40*set)...)
			return in, nil
		},
	}
}

const grepSrc = `
char pat[256];
char line[1024];

int readline(char *buf, int max) {
	int n = 0;
	int c = getc(0);
	if (c < 0) return -1;
	while (c >= 0 && c != '\n' && n < max - 1) {
		buf[n] = c;
		n++;
		c = getc(0);
	}
	buf[n] = 0;
	return n;
}

int match(char *text, char *p) {
	int i = 0;
	while (text[i]) {
		int j = 0;
		while (p[j] && text[i + j] == p[j]) j++;
		if (!p[j]) return 1;
		i++;
	}
	return 0;
}

void putline(char *s) {
	while (*s) {
		putc(*s);
		s++;
	}
	putc('\n');
}

int main() {
	int n = readline(pat, 256);
	if (n <= 0) return 1;
	while (readline(line, 1024) >= 0) {
		if (match(line, pat)) putline(line);
	}
	return 0;
}
`
