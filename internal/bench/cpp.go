package bench

import "fmt"

// Cpp returns the paper's fourth benchmark: C pre-processor macro
// expansion. The program reads #define directives and substitutes macro
// names (recursively, one level per pass over the replacement) in the rest
// of the text, preserving everything else.
func Cpp() *Benchmark {
	return &Benchmark{
		Name:   "cpp",
		Source: cppSrc,
		Inputs: func(set int) ([]byte, []byte) {
			r := newRng(uint32(0xc44 * set))
			var in []byte
			nmac := 12
			for i := 0; i < nmac; i++ {
				in = append(in, fmt.Sprintf("#define M%d %s%d\n", i, words[r.intn(len(words))], r.intn(100))...)
			}
			lines := 150 + 25*set
			for i := 0; i < lines; i++ {
				n := 1 + r.intn(7)
				for k := 0; k < n; k++ {
					if k > 0 {
						in = append(in, ' ')
					}
					if r.intn(3) == 0 {
						in = append(in, fmt.Sprintf("M%d", r.intn(nmac))...)
					} else {
						in = append(in, words[r.intn(len(words))]...)
					}
				}
				in = append(in, '\n')
			}
			return in, nil
		},
	}
}

const cppSrc = `
char names[2048];    // 64 macros x 32 bytes
char values[8192];   // 64 macros x 128 bytes
int nmac = 0;
char line[1024];
char token[256];

int isident(int c) {
	if (c >= 'a' && c <= 'z') return 1;
	if (c >= 'A' && c <= 'Z') return 1;
	if (c >= '0' && c <= '9') return 1;
	if (c == '_') return 1;
	return 0;
}

int readline(char *buf, int max) {
	int n = 0;
	int c = getc(0);
	if (c < 0) return -1;
	while (c >= 0 && c != '\n' && n < max - 1) {
		buf[n] = c;
		n++;
		c = getc(0);
	}
	buf[n] = 0;
	return n;
}

int streq(char *a, char *b) {
	while (*a && *a == *b) {
		a++;
		b++;
	}
	return *a == *b;
}

void copystr(char *dst, char *src, int max) {
	int i = 0;
	while (src[i] && i < max - 1) {
		dst[i] = src[i];
		i++;
	}
	dst[i] = 0;
}

// lookup returns the macro index for a name, or -1.
int lookup(char *name) {
	int i;
	for (i = 0; i < nmac; i++) {
		if (streq(names + i * 32, name)) return i;
	}
	return -1;
}

int startswith(char *s, char *prefix) {
	while (*prefix) {
		if (*s != *prefix) return 0;
		s++;
		prefix++;
	}
	return 1;
}

// define parses "#define NAME VALUE".
void define(char *s) {
	int i = 7;   // skip "#define"
	int j = 0;
	if (nmac >= 64) return;
	while (s[i] == ' ') i++;
	while (isident(s[i]) && j < 31) {
		names[nmac * 32 + j] = s[i];
		i++;
		j++;
	}
	names[nmac * 32 + j] = 0;
	while (s[i] == ' ') i++;
	j = 0;
	while (s[i] && j < 127) {
		values[nmac * 128 + j] = s[i];
		i++;
		j++;
	}
	values[nmac * 128 + j] = 0;
	nmac++;
}

void putstr(char *s) {
	while (*s) {
		putc(*s);
		s++;
	}
}

// expand writes the line with macros substituted.
void expand(char *s) {
	int i = 0;
	while (s[i]) {
		if (isident(s[i])) {
			int j = 0;
			while (isident(s[i]) && j < 255) {
				token[j] = s[i];
				i++;
				j++;
			}
			token[j] = 0;
			int m = lookup(token);
			if (m >= 0) putstr(values + m * 128);
			else putstr(token);
		} else {
			putc(s[i]);
			i++;
		}
	}
	putc('\n');
}

int main() {
	while (readline(line, 1024) >= 0) {
		if (startswith(line, "#define")) define(line);
		else expand(line);
	}
	return 0;
}
`
