package faultinject_test

import (
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// chattyProgram builds a small looping program with stores, loads, and
// branches — enough machine activity for every injection class to find a
// site.
func chattyProgram() *ir.Program {
	p := &ir.Program{MemSize: 1 << 16}
	f := &ir.Func{Name: "main"}
	p.Funcs = append(p.Funcs, f)
	head := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Const, Dst: 5, Imm: 4096},
			{Op: ir.Add, Dst: 6, A: 6, B: 7},
			{Op: ir.St, A: 5, B: 6},
			{Op: ir.Ld, Dst: 8, A: 5},
			{Op: ir.Const, Dst: 9, Imm: 1},
			{Op: ir.Add, Dst: 7, A: 7, B: 9},
			{Op: ir.Const, Dst: 10, Imm: 400},
			{Op: ir.Lt, Dst: 11, A: 7, B: 10},
		},
		Term: ir.Node{Op: ir.Br, A: 11, Target: 0},
	}
	tail := &ir.Block{
		Body: []ir.Node{
			{Op: ir.Sys, Dst: 12, A: 8, B: ir.NoReg, Imm: ir.SysPutc},
		},
		Term: ir.Node{Op: ir.Halt},
		Fall: ir.NoBlock,
	}
	p.AddBlock(0, head)
	p.AddBlock(0, tail)
	head.Fall = tail.ID
	f.Entry = head.ID
	return p
}

func run(t *testing.T, inj *faultinject.Injector) *core.RunResult {
	t.Helper()
	im, _ := machine.IssueModelByID(8)
	mc, _ := machine.MemConfigByID('D')
	cfg := machine.Config{Disc: machine.Dyn256, Issue: im, Mem: mc, Branch: machine.SingleBB}
	img, err := loader.Load(chattyProgram(), cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lim core.Limits
	lim.MaxCycles = 1 << 24
	if inj != nil {
		lim.Fault = inj.Hook()
	}
	res, err := core.Run(img, nil, nil, nil, nil, lim)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInjectorDeterministic: the same (seed, rate, program) triple replays
// the exact same event stream — the property failure reports rely on.
func TestInjectorDeterministic(t *testing.T) {
	opts := faultinject.Options{Seed: 42, Rate: 0.05, MaxInjections: 50}
	a := faultinject.New(opts)
	b := faultinject.New(opts)
	run(t, a)
	run(t, b)
	if a.Injected() == 0 {
		t.Fatal("seed 42 injected nothing; pick a busier rate")
	}
	ea, eb := a.Events(), b.Events()
	if len(ea) != len(eb) {
		t.Fatalf("replay applied %d events, first run %d", len(eb), len(ea))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %s vs %s", i, ea[i], eb[i])
		}
	}
}

// TestInjectorSeedsDiverge: distinct seeds drive distinct streams.
func TestInjectorSeedsDiverge(t *testing.T) {
	a := faultinject.New(faultinject.Options{Seed: 1, Rate: 0.05, MaxInjections: 50})
	b := faultinject.New(faultinject.Options{Seed: 2, Rate: 0.05, MaxInjections: 50})
	run(t, a)
	run(t, b)
	if a.Injected() == 0 || b.Injected() == 0 {
		t.Fatal("injectors applied nothing")
	}
	same := len(a.Events()) == len(b.Events())
	if same {
		for i := range a.Events() {
			if a.Events()[i] != b.Events()[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical event streams")
	}
}

// TestZeroRateDisables: Rate 0 yields a nil hook and a clean run.
func TestZeroRateDisables(t *testing.T) {
	inj := faultinject.New(faultinject.Options{Seed: 7})
	if inj.Hook() != nil {
		t.Fatal("zero rate should return a nil hook")
	}
	res := run(t, nil)
	if res.Stats.InjectedFaults != 0 {
		t.Error("uninjected run counted injected faults")
	}
}

// TestMaxInjectionsCaps: the injector stops attempting past its cap.
func TestMaxInjectionsCaps(t *testing.T) {
	inj := faultinject.New(faultinject.Options{Seed: 9, Rate: 1, MaxInjections: 4})
	run(t, inj)
	if got := inj.Injected(); got > 4 {
		t.Errorf("injected %d events past a cap of 4", got)
	}
}

// TestEngineCountsMatchInjector: the engine's stats agree with the
// injector's own event log.
func TestEngineCountsMatchInjector(t *testing.T) {
	inj := faultinject.New(faultinject.Options{Seed: 42, Rate: 0.05, MaxInjections: 50})
	res := run(t, inj)
	if res.Stats.InjectedFaults != int64(inj.Injected()) {
		t.Errorf("engine counted %d injections, injector applied %d", res.Stats.InjectedFaults, inj.Injected())
	}
	if res.Stats.RepairedFaults != res.Stats.InjectedFaults {
		t.Errorf("%d injected but %d repaired", res.Stats.InjectedFaults, res.Stats.RepairedFaults)
	}
}

// TestCorruptEnlargementAlwaysChanges: every seed yields a file that
// differs from the original (the corruption is never a silent no-op on a
// multi-step chain file) and never aliases the original's backing arrays.
func TestCorruptEnlargementAlwaysChanges(t *testing.T) {
	ef := &enlarge.File{Chains: []enlarge.Chain{
		{Entry: 3, Steps: []enlarge.Step{{Block: 3}, {Block: 4, TakenToNext: true}, {Block: 5}}},
		{Entry: 7, Steps: []enlarge.Step{{Block: 7}, {Block: 8}}},
	}}
	orig := *ef
	origSteps := [][]enlarge.Step{append([]enlarge.Step(nil), ef.Chains[0].Steps...), append([]enlarge.Step(nil), ef.Chains[1].Steps...)}
	for seed := uint64(0); seed < 32; seed++ {
		bad := faultinject.CorruptEnlargement(ef, seed)
		differs := false
		for i := range bad.Chains {
			if bad.Chains[i].Entry != ef.Chains[i].Entry {
				differs = true
			}
			for j := range bad.Chains[i].Steps {
				if bad.Chains[i].Steps[j] != ef.Chains[i].Steps[j] {
					differs = true
				}
			}
		}
		if !differs {
			t.Errorf("seed %d: corruption was a no-op", seed)
		}
	}
	// The original must be untouched.
	if ef.Chains[0].Entry != orig.Chains[0].Entry || ef.Chains[1].Entry != orig.Chains[1].Entry {
		t.Fatal("CorruptEnlargement mutated the original file's entries")
	}
	for i, steps := range origSteps {
		for j := range steps {
			if ef.Chains[i].Steps[j] != steps[j] {
				t.Fatal("CorruptEnlargement mutated the original file's steps")
			}
		}
	}
}
