// Package faultinject drives deterministic, seed-based fault injection
// into the dynamic engine through core.Limits.Fault. Every decision — when
// to inject, which fault class, which site — derives from a splitmix64
// stream over the seed, so a failing (seed, rate, program) triple replays
// exactly.
//
// The injectable classes split by repair story:
//
//   - PredictorBit, WindowSquash, ValueBit, MemViolation are repairable:
//     the engine's checkpoint machinery absorbs them and the run's output
//     (and retired work) stays byte-identical to an uninjected run — the
//     invariant difftest's fault mode checks.
//   - ArchBit flips committed architectural memory, which is beyond the
//     checkpoints' reach; the engine surfaces it as a typed
//     *core.UnrecoverableFaultError (a machine check), never as silently
//     wrong output. It is opt-in (excluded from DefaultKinds).
package faultinject

import (
	"fmt"

	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/ir"
)

// Kind is a class of injectable fault.
type Kind uint8

const (
	// PredictorBit flips a bit of branch predictor state.
	PredictorBit Kind = iota
	// WindowSquash squashes a window position and refetches it from its
	// checkpoint (a detected transient fault).
	WindowSquash
	// ValueBit flips a bit of a completed ALU result, then recovers the
	// block from its checkpoint (ECC-detected flip).
	ValueBit
	// MemViolation forces a disambiguation-blocked load to execute early.
	MemViolation
	// ArchBit flips a bit of committed architectural memory (always
	// unrecoverable; opt-in).
	ArchBit

	numKinds
)

var kindNames = [numKinds]string{
	PredictorBit: "predictor-bit",
	WindowSquash: "window-squash",
	ValueBit:     "value-bit",
	MemViolation: "mem-violation",
	ArchBit:      "arch-bit",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "kind?"
}

// DefaultKinds is the repairable fault set: everything except ArchBit.
func DefaultKinds() []Kind {
	return []Kind{PredictorBit, WindowSquash, ValueBit, MemViolation}
}

// Options configure an injector.
type Options struct {
	// Seed selects the deterministic injection stream.
	Seed uint64
	// Rate is the per-cycle injection probability in [0, 1]. Zero disables
	// injection entirely (Hook returns nil).
	Rate float64
	// Kinds are the fault classes to draw from; nil means DefaultKinds.
	Kinds []Kind
	// MaxInjections caps attempted injections (0 = no cap).
	MaxInjections int
}

// Event records one applied injection.
type Event struct {
	Cycle int64
	Kind  Kind
	Desc  string
}

func (ev Event) String() string {
	return fmt.Sprintf("cycle %d: %s: %s", ev.Cycle, ev.Kind, ev.Desc)
}

// Injector owns one injection stream. It is not safe for concurrent use;
// build one per run.
type Injector struct {
	opts       Options
	kinds      []Kind
	rng        uint64
	tried      int
	events     []Event
	eventsBase int // injections applied before a checkpoint resume
}

// New builds an injector for one run.
func New(opts Options) *Injector {
	kinds := opts.Kinds
	if kinds == nil {
		kinds = DefaultKinds()
	}
	return &Injector{opts: opts, kinds: kinds, rng: opts.Seed}
}

// State is the serializable mid-run state of an injector: the RNG stream
// position, the attempt counter (MaxInjections bookkeeping), and the
// event-log position. A resumed injector continues the exact stream the
// interrupted run would have drawn.
type State struct {
	RNG    uint64
	Tried  int64
	Events int64
}

// State snapshots the injector.
func (inj *Injector) State() *State {
	return &State{
		RNG:    inj.rng,
		Tried:  int64(inj.tried),
		Events: int64(inj.eventsBase + len(inj.events)),
	}
}

// Resume builds an injector that continues a snapshotted stream: same
// options, but the RNG, attempt counter, and event-log position pick up
// where the snapshot left off. Events applied before the snapshot are not
// replayed into the log (they belong to the previous life of the run);
// Injected still counts them.
func Resume(opts Options, st *State) *Injector {
	inj := New(opts)
	inj.rng = st.RNG
	inj.tried = int(st.Tried)
	inj.eventsBase = int(st.Events)
	return inj
}

// splitmix64 is the standard 64-bit mix; tiny, fast, and plenty for
// choosing injection sites.
func (inj *Injector) next() uint64 {
	inj.rng += 0x9e3779b97f4a7c15
	z := inj.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hook returns the per-cycle hook to install as core.Limits.Fault, or nil
// when the configured rate disables injection.
func (inj *Injector) Hook() core.FaultHook {
	if inj.opts.Rate <= 0 || len(inj.kinds) == 0 {
		return nil
	}
	threshold := uint64(inj.opts.Rate * float64(1<<53))
	return func(p core.FaultPort) {
		if inj.opts.MaxInjections > 0 && inj.tried >= inj.opts.MaxInjections {
			return
		}
		if inj.next()&(1<<53-1) >= threshold {
			return
		}
		inj.tried++
		kind := inj.kinds[inj.next()%uint64(len(inj.kinds))]
		r := inj.next()
		var desc string
		var ok bool
		switch kind {
		case PredictorBit:
			desc = p.PerturbPredictor(r)
			ok = desc != ""
		case WindowSquash:
			pos := 0
			if n := p.ActiveBlocks(); n > 0 {
				pos = int(r>>32) % n
			}
			desc, ok = p.InjectSquash(pos)
		case ValueBit:
			pos := 0
			if n := p.ActiveBlocks(); n > 0 {
				pos = int(r>>32) % n
			}
			desc, ok = p.CorruptValue(pos, r)
		case MemViolation:
			desc, ok = p.ForceMemViolation(r)
		case ArchBit:
			desc = p.CorruptArch(r)
			ok = desc != ""
		}
		if ok {
			inj.events = append(inj.events, Event{Cycle: p.Cycle(), Kind: kind, Desc: desc})
		}
	}
}

// Events returns the injections applied so far by this injector, in cycle
// order. A resumed injector's log covers only its own segment; injections
// from before the snapshot live in the previous segment's log.
func (inj *Injector) Events() []Event { return inj.events }

// Injected is the number of applied injections, including those applied
// before a checkpoint resume.
func (inj *Injector) Injected() int { return inj.eventsBase + len(inj.events) }

// CorruptEnlargement returns a structurally corrupted copy of an
// enlargement file, for exercising the loader's validation and the
// degraded single-block fallback. The corruption mode derives from the
// seed: a wild block ID, a chain whose entry disagrees with its first
// step, or a step that does not follow its predecessor's arcs.
func CorruptEnlargement(ef *enlarge.File, seed uint64) *enlarge.File {
	out := &enlarge.File{Options: ef.Options, Chains: make([]enlarge.Chain, len(ef.Chains))}
	for i, c := range ef.Chains {
		steps := make([]enlarge.Step, len(c.Steps))
		copy(steps, c.Steps)
		out.Chains[i] = enlarge.Chain{Entry: c.Entry, Steps: steps}
	}
	if len(out.Chains) == 0 {
		// Nothing to corrupt structurally: fabricate a chain with a wild ID.
		out.Chains = []enlarge.Chain{{
			Entry: ir.BlockID(1 << 30),
			Steps: []enlarge.Step{{Block: ir.BlockID(1 << 30)}, {Block: ir.BlockID(1<<30 + 1)}},
		}}
		return out
	}
	inj := &Injector{rng: seed}
	c := &out.Chains[inj.next()%uint64(len(out.Chains))]
	switch inj.next() % 3 {
	case 0:
		s := inj.next() % uint64(len(c.Steps))
		c.Steps[s].Block = ir.BlockID(1<<30) + ir.BlockID(inj.next()%1024)
	case 1:
		c.Entry = c.Entry + 1
	default:
		// Reverse the steps: the walk no longer follows terminator arcs.
		for i, j := 0, len(c.Steps)-1; i < j; i, j = i+1, j-1 {
			c.Steps[i], c.Steps[j] = c.Steps[j], c.Steps[i]
		}
	}
	return out
}
