package difftest

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"

	"fgpsim/internal/core"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/snapshot"
)

// The snapshot oracle enforces the durability layer's central promise: a
// run that is checkpointed, serialized to bytes, decoded, and resumed into
// a fresh engine — possibly several times, at seed-randomized points — is
// indistinguishable from the run that was never interrupted. "The run" here
// means the cadence-armed run: arming CheckpointEvery=K perturbs the
// dynamic engine's timing (drains stall issue), so the straight baseline
// and the chained runs share the same cadence K and are compared
// byte-for-byte on output and field-for-field on statistics. Against the
// unarmed run the oracle checks the architectural subset: output and
// retired node/block counts, which drains must never change.

// SnapshotMatrix returns the variants the snapshot oracle sweeps: both
// disciplines, both block modes, both predictor families, cached and
// perfect memory, and perfect prediction (whose trace cursor must survive
// the snapshot). The fill unit is excluded by design — its run-time image
// mutation makes snapshots unsupported (a typed refusal covered by core's
// own tests).
func SnapshotMatrix() []Variant {
	cfg := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode, pk machine.PredictorKind) machine.Config {
		im, _ := machine.IssueModelByID(issue)
		mc, _ := machine.MemConfigByID(mem)
		return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm, Predictor: pk}
	}
	return []Variant{
		{cfg(machine.Static, 4, 'A', machine.SingleBB, machine.TwoBit), false},
		{cfg(machine.Static, 8, 'D', machine.EnlargedBB, machine.TwoBit), false},
		{cfg(machine.Dyn4, 8, 'D', machine.SingleBB, machine.TwoBit), true},
		{cfg(machine.Dyn4, 8, 'A', machine.EnlargedBB, machine.TwoBit), false},
		{cfg(machine.Dyn256, 8, 'G', machine.EnlargedBB, machine.GSharePredictor), false},
		{cfg(machine.Dyn256, 8, 'A', machine.Perfect, machine.TwoBit), false},
	}
}

// errStopRun is the sentinel a chained run's checkpoint hook returns to
// interrupt the engine mid-run; the harness resumes from the last decoded
// snapshot and continues.
var errStopRun = errors.New("difftest: interrupt after checkpoint")

// snapRNG is a tiny splitmix64 for deriving per-variant cadences and
// interruption points from the sweep seed.
type snapRNG uint64

func (r *snapRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// SnapshotOracle checks checkpoint/restore determinism for every variant:
//
//   - every checkpoint taken by the cadence-K straight run survives an
//     Encode/Decode roundtrip bit-identically (the serialized form is
//     canonical);
//   - a run interrupted at randomized checkpoints — each resume going
//     through serialized bytes, as a crash recovery would — finishes with
//     output and statistics identical to the straight cadence-K run;
//   - the cadence-K run's committed path (output, retired nodes, retired
//     blocks) matches the unarmed run's: drains change timing, never
//     architecture;
//   - the measurement input's arc profile stays self-consistent
//     (checkArcProfile, shared with the main oracle).
func (c *Case) SnapshotOracle(vs []Variant, seed uint64) (*Report, error) {
	rep := &Report{Case: c}
	rng := snapRNG(seed)
	for _, v := range vs {
		if v.Cfg.Branch == machine.FillUnit {
			return nil, fmt.Errorf("difftest: %s: fill unit cannot be snapshotted", c.Name)
		}
		img, err := loader.Load(c.Prog, v.Cfg, c.EF)
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: load %s: %w", c.Name, v, err)
		}
		var hints map[ir.BlockID]bool
		if v.Hinted {
			hints = c.Hints
		}
		fp := snapshot.RunFingerprint(img, c.In, c.In1, hints)

		plain, err := core.Run(img, c.In, c.In1, c.Ref.Trace, hints, core.Limits{MaxCycles: maxCycles})
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: plain run %s: %w", c.Name, v, err)
		}
		// A cadence that lands 2–6 checkpoints inside the run, derived from
		// the seed so different trials cut the run at different points.
		every := plain.Stats.Cycles / int64(2+rng.next()%5)
		if every < 1 {
			every = 1
		}

		straight, nStraight, err := c.runStraight(img, hints, every, fp)
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: straight cadence run %s: %w", c.Name, v, err)
		}
		rep.Runs = append(rep.Runs, VariantRun{Variant: v, Stats: straight.Stats})

		if !bytes.Equal(straight.Output, plain.Output) {
			rep.add(v, "output", "cadence %d changed the output", every)
		}
		if straight.Stats.RetiredNodes != plain.Stats.RetiredNodes ||
			straight.Stats.RetiredBlocks != plain.Stats.RetiredBlocks {
			rep.add(v, "retired-nodes", "cadence %d changed retired work: %d/%d vs %d/%d",
				every, straight.Stats.RetiredNodes, straight.Stats.RetiredBlocks,
				plain.Stats.RetiredNodes, plain.Stats.RetiredBlocks)
		}
		for _, msg := range CheckStats(straight.Stats) {
			rep.add(v, "stats", "%s", msg)
		}

		if nStraight == 0 {
			// The run finished before its first checkpoint (it can happen
			// when the final drain overlaps the halt); nothing to chain.
			continue
		}
		chained, segments, err := c.runChained(img, hints, every, fp, &rng)
		if err != nil {
			rep.add(v, "snapshot", "chained run failed: %v", err)
			continue
		}
		if !bytes.Equal(chained.Output, straight.Output) {
			rep.add(v, "snapshot", "output after %d interruptions differs from straight cadence run", segments)
		}
		if !reflect.DeepEqual(chained.Stats, straight.Stats) {
			rep.add(v, "snapshot", "stats after %d interruptions differ from straight cadence run:\nstraight %+v\nchained  %+v",
				segments, straight.Stats, chained.Stats)
		}
	}
	c.checkArcProfile(rep)
	return rep, nil
}

// runStraight runs the cadence-armed baseline, roundtripping every
// checkpoint through the serialized form to verify canonical encoding.
func (c *Case) runStraight(img *loader.Image, hints map[ir.BlockID]bool, every int64, fp uint64) (*core.RunResult, int, error) {
	taken := 0
	lim := core.Limits{
		MaxCycles:       maxCycles,
		CheckpointEvery: every,
		Checkpoint: func(st *core.EngineState) error {
			taken++
			data := snapshot.Encode(&snapshot.Snapshot{Fingerprint: fp, Engine: st})
			s, err := snapshot.Decode(data)
			if err != nil {
				return fmt.Errorf("checkpoint %d failed decode: %w", taken, err)
			}
			if !bytes.Equal(data, snapshot.Encode(s)) {
				return fmt.Errorf("checkpoint %d: encoding is not canonical", taken)
			}
			if !reflect.DeepEqual(s.Engine, st) {
				return fmt.Errorf("checkpoint %d: decoded state differs from captured state", taken)
			}
			return nil
		},
	}
	res, err := core.Run(img, c.In, c.In1, c.Ref.Trace, hints, lim)
	return res, taken, err
}

// runChained repeatedly interrupts the run after a seed-chosen number of
// checkpoints and resumes from the serialized snapshot, exactly as a crash
// recovery would, until the run completes. Returns the final result and
// how many times the run was interrupted.
func (c *Case) runChained(img *loader.Image, hints map[ir.BlockID]bool, every int64, fp uint64, rng *snapRNG) (*core.RunResult, int, error) {
	var resume *core.EngineState
	segments := 0
	for {
		target := 1 + int(rng.next()%3) // checkpoints before this segment is cut
		taken := 0
		var last *core.EngineState
		lim := core.Limits{
			MaxCycles:       maxCycles,
			CheckpointEvery: every,
			Resume:          resume,
			Checkpoint: func(st *core.EngineState) error {
				s, err := snapshot.Decode(snapshot.Encode(&snapshot.Snapshot{Fingerprint: fp, Engine: st}))
				if err != nil {
					return err
				}
				if s.Fingerprint != fp {
					return fmt.Errorf("fingerprint mangled in roundtrip")
				}
				last = s.Engine
				if taken++; taken >= target {
					return errStopRun
				}
				return nil
			},
		}
		res, err := core.Run(img, c.In, c.In1, c.Ref.Trace, hints, lim)
		if err == nil {
			return res, segments, nil
		}
		if !errors.Is(err, errStopRun) {
			return nil, segments, err
		}
		if last == nil {
			return nil, segments, errors.New("interrupted without a snapshot")
		}
		resume = last
		segments++
	}
}
