package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"fgpsim/internal/ir"
	"fgpsim/internal/minic"
)

// TestExamplesOracle runs every program shipped under examples/ through the
// full oracle matrix as table-driven golden cases, with inputs shaped like
// the ones the examples themselves use. The example binaries embed these
// exact files, so a program that drifts out of sync with the toolchain
// fails here before a reader ever runs it.
func TestExamplesOracle(t *testing.T) {
	examples := filepath.Join("..", "..", "examples")
	read := func(parts ...string) string {
		data, err := os.ReadFile(filepath.Join(append([]string{examples}, parts...)...))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}

	dict := []byte("the\nquick\nbrown\nfox\njumps\nover\nlazy\ndog\n\n")
	cases := []struct {
		name    string
		prepare func(t *testing.T) *Case
	}{
		{
			name: "quickstart/wc.mc",
			prepare: func(t *testing.T) *Case {
				c, err := CompileCase("wc.mc", read("quickstart", "wc.mc"),
					[]byte("profile me first\nwith two lines\n"),
					[]byte("the quick brown fox\njumps over the lazy dog\npack my box with five dozen liquor jugs\n"))
				if err != nil {
					t.Fatal(err)
				}
				return c
			},
		},
		{
			// The spell checker reads the dictionary on stream 1 and the
			// text on stream 0, profiling on one text and measuring on
			// another — the paper's two-input methodology end to end.
			name: "customlang/spell.mc",
			prepare: func(t *testing.T) *Case {
				prog, err := minic.Compile("spell.mc", read("customlang", "spell.mc"), minic.Options{Optimize: true})
				if err != nil {
					t.Fatal(err)
				}
				c := &Case{
					Name:       "spell.mc",
					Prog:       prog,
					ProfileIn:  []byte("the quick red fox leaps over the lazy dog\nthe dog naps\n"),
					ProfileIn1: dict,
					In:         []byte("a quick brown cat jumps over the sleepy dog\nfoxes jump\n"),
					In1:        dict,
				}
				if err := c.Prepare(); err != nil {
					t.Fatal(err)
				}
				return c
			},
		},
		{
			name: "pipeline/sum.asm",
			prepare: func(t *testing.T) *Case {
				prog, err := ir.Assemble(read("pipeline", "sum.asm"))
				if err != nil {
					t.Fatal(err)
				}
				c, err := PrepareCase("sum.asm", prog, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				return c
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := tc.prepare(t).Oracle(Matrix())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rep.Divergences {
				t.Errorf("%s", d)
			}
		})
	}
}
