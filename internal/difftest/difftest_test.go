package difftest

import (
	"strings"
	"testing"

	"fgpsim/internal/interp"
	"fgpsim/internal/minic"
	"fgpsim/internal/sched/exact"
)

// genProfiles are the feature mixes the oracle sweep rotates through
// (SweepProfiles, shared with cmd/difftest so failure seeds replay under
// the same profile).
var genProfiles = SweepProfiles()

// TestGenerateDeterministic: the generator is a pure function of seed and
// options — corpus entries and failure seeds must reproduce forever.
func TestGenerateDeterministic(t *testing.T) {
	for _, o := range genProfiles {
		if Generate(42, o) != Generate(42, o) {
			t.Fatal("Generate is not deterministic")
		}
	}
	if Generate(1, DefaultGenOptions()) == Generate(2, DefaultGenOptions()) {
		t.Fatal("distinct seeds produced identical programs")
	}
	if string(GenInput(7, 64)) != string(GenInput(7, 64)) {
		t.Fatal("GenInput is not deterministic")
	}
}

// TestOracleGeneratedPrograms is the standing differential sweep: 200
// generated programs (a rotating mix of feature profiles), each compiled
// once and pushed through the full engine × predictor × enlargement matrix
// plus the metamorphic invariants. Any divergence fails with the seed, so
// the exact case replays with:
//
//	go run ./cmd/difftest -gen 1 -seed <seed>
func TestOracleGeneratedPrograms(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 12
	}
	matrix := Matrix()
	schedMatrix := ScheduleMatrix()
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		opts := genProfiles[trial%len(genProfiles)]
		src := Generate(seed, opts)
		c, err := CompileCase("gen.mc", src, GenInput(seed*2, 180+int(seed%120)), GenInput(seed*2+1, 180+int((seed+7)%120)))
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		rep, err := c.Oracle(matrix)
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		for _, d := range rep.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged; program:\n%s", seed, src)
		}
		if got := len(rep.Runs); got != len(matrix) {
			t.Fatalf("seed %d: %d runs, want %d", seed, got, len(matrix))
		}
		// The schedule oracle rides the same sweep: every static image's
		// list schedule legal and never shorter than the exact optimum.
		srep, err := c.ScheduleOracle(schedMatrix, exact.DefaultOptions())
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		for _, d := range srep.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("seed %d schedule oracle diverged; program:\n%s", seed, src)
		}
	}
}

// interpOutput runs a compiled program functionally and returns its output,
// or nil on any error (including node-limit overruns) — the shape reducer
// predicates want.
func interpOutput(src string, in []byte) []byte {
	prog, err := minic.Compile("pred.mc", src, minic.Options{Optimize: true})
	if err != nil {
		return nil
	}
	res, err := interp.Run(prog, in, nil, interp.Options{MaxNodes: 1 << 22})
	if err != nil {
		return nil
	}
	return res.Output
}

// TestReducerShrinksSyntheticFailure: plant a marker statement in a large
// generated program and reduce with "output still contains the marker" as
// the failure predicate — the stand-in for a real engine divergence. The
// reducer must strip the couple hundred surrounding statements down to a
// handful while the marker survives.
func TestReducerShrinksSyntheticFailure(t *testing.T) {
	big := Generate(99, GenOptions{Helpers: 4, BodyOps: 24, Calls: 1, Loops: 1, Arrays: 1, Bytes: 1, ALU: 1, Branchy: 1})
	// Inject the failure marker right before main's final output.
	marker := "putc('!');"
	big = strings.Replace(big, "\tputc('A' + ", "\t"+marker+"\n\tputc('A' + ", 1)
	if !strings.Contains(big, marker) {
		t.Fatal("marker injection failed — generator output shape changed")
	}
	in := GenInput(5, 200)
	fails := func(src string) bool {
		return strings.Contains(string(interpOutput(src, in)), "!")
	}
	if !fails(big) {
		t.Fatal("synthetic failure does not reproduce before reduction")
	}
	before := CountStatements(big)
	reduced, err := Reduce(big, fails)
	if err != nil {
		t.Fatal(err)
	}
	after := CountStatements(reduced)
	t.Logf("reduced %d statements to %d:\n%s", before, after, reduced)
	if !fails(reduced) {
		t.Fatal("reduced program no longer reproduces the failure")
	}
	if after > 10 {
		t.Errorf("reduced program still has %d statements (want <= 10):\n%s", after, reduced)
	}
	if before <= after {
		t.Errorf("no shrinkage: %d -> %d statements", before, after)
	}
}

// TestReduceRejectsNonFailure: the reducer refuses inputs that do not
// compile or do not reproduce, instead of "reducing" them to noise.
func TestReduceRejectsNonFailure(t *testing.T) {
	if _, err := Reduce("int main() { return 0; }", func(string) bool { return false }); err == nil {
		t.Error("Reduce accepted a program that does not fail")
	}
	if _, err := Reduce("int main() { syntax error", func(string) bool { return true }); err == nil {
		t.Error("Reduce accepted a program that does not compile")
	}
}

// TestReducePreservesCompilability: every reduction result compiles, even
// under a predicate that accepts everything it is shown.
func TestReducePreservesCompilability(t *testing.T) {
	src := Generate(3, DefaultGenOptions())
	reduced, err := Reduce(src, func(string) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if !compiles(reduced) {
		t.Fatalf("reduction produced a non-compiling program:\n%s", reduced)
	}
	// Under an always-true predicate the fixpoint is tiny: main alone.
	if n := CountStatements(reduced); n > 2 {
		t.Errorf("always-failing predicate left %d statements:\n%s", n, reduced)
	}
}

// TestCountStatements pins the size metric.
func TestCountStatements(t *testing.T) {
	src := `int main() {
	int i;
	for (i = 0; i < 3; i++) { putc('a'); }
	if (i > 2) putc('b'); else putc('c');
	;
	return 0;
}`
	// decl, for, inner putc, if, then-putc, else-putc, return = 7
	// (the block and the empty statement do not count).
	if n := CountStatements(src); n != 7 {
		t.Errorf("CountStatements = %d, want 7", n)
	}
	if n := CountStatements("not minic"); n != -1 {
		t.Errorf("CountStatements on garbage = %d, want -1", n)
	}
}
