// Package difftest is the differential-verification harness: it generates
// random MiniC programs, runs each one through the functional interpreter
// and a matrix of timed machine configurations (the cross-engine oracle),
// checks metamorphic invariants between configurations, and shrinks failing
// programs to minimal repros. Every engine in internal/core promises output
// bit-identical to internal/interp; this package is the machinery that
// makes the promise machine-checked instead of spot-checked, so perf and
// refactoring PRs have a standing correctness backstop.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenOptions tune the random program generator. Weights are relative: a
// feature with weight 0 never appears; doubling a weight roughly doubles how
// often the generator picks it. The defaults reproduce the feature mix of
// the paper's five benchmarks (loop-heavy, array-heavy, byte- and word-wide
// memory traffic, shallow call graphs with occasional recursion).
type GenOptions struct {
	// Helpers is how many helper functions to define (main always exists).
	Helpers int
	// BodyOps is the operation budget of main's input-consuming loop; the
	// total program size grows roughly linearly with it.
	BodyOps int

	// Feature weights for the statements inside loop bodies.
	Calls   float64 // call a helper function
	Loops   float64 // nested bounded loops (while / for)
	Arrays  float64 // word-array reads and writes
	Bytes   float64 // byte-array (char) traffic
	ALU     float64 // plain arithmetic/logic on scalars
	Branchy float64 // data-dependent if/else chains
}

// DefaultGenOptions is the mix used by the oracle tests and the fuzz seeds.
func DefaultGenOptions() GenOptions {
	return GenOptions{
		Helpers: 3,
		BodyOps: 6,
		Calls:   1.5,
		Loops:   1,
		Arrays:  1.5,
		Bytes:   1,
		ALU:     1.5,
		Branchy: 1.5,
	}
}

// SweepProfiles returns the feature mixes the generated-program sweeps
// rotate through, so loop-heavy, recursion-heavy, byte-heavy, and
// branch-heavy programs all appear in every run. Exported so cmd/difftest
// replays a failing test seed under the exact profile the test picked
// (profile index = seed modulo the profile count; the test seed bases are
// multiples of the count).
func SweepProfiles() []GenOptions {
	return []GenOptions{
		DefaultGenOptions(),
		{Helpers: 2, BodyOps: 10, Loops: 3, Arrays: 1, ALU: 1, Branchy: 1},             // loop-heavy
		{Helpers: 4, BodyOps: 5, Calls: 3, ALU: 1, Branchy: 0.5},                       // call/recursion-heavy
		{Helpers: 2, BodyOps: 8, Bytes: 3, Arrays: 0.5, ALU: 1},                        // byte-traffic-heavy
		{Helpers: 3, BodyOps: 12, Branchy: 3, ALU: 2, Arrays: 1, Bytes: 1, Loops: 0.5}, // branch-heavy
	}
}

func (o GenOptions) normalized() GenOptions {
	if o.Helpers <= 0 {
		o.Helpers = 1
	}
	if o.Helpers > 6 {
		o.Helpers = 6
	}
	if o.BodyOps <= 0 {
		o.BodyOps = 1
	}
	if o.BodyOps > 64 {
		o.BodyOps = 64
	}
	if o.Calls+o.Loops+o.Arrays+o.Bytes+o.ALU+o.Branchy <= 0 {
		o.ALU = 1
	}
	return o
}

// pickWeighted returns an index into weights chosen with the given relative
// probabilities (weights must not all be zero).
func pickWeighted(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Generate emits a random, deterministic (per seed+options), always
// terminating MiniC program. Every generated program reads stream 0 until
// EOF, folds the bytes through helper calls, loops, and mixed-width memory
// traffic, and prints a short checksum — so its output depends on the whole
// input and every engine divergence becomes visible in the final bytes.
// Control flow is data-dependent on the input, which means enlargement
// chains built from one input get exercised (and assert-faulted) by
// another.
func Generate(seed int64, o GenOptions) string {
	o = o.normalized()
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString("int arr[128];\nchar buf[256];\n")

	nHelpers := 1 + rng.Intn(o.Helpers)
	for h := 0; h < nHelpers; h++ {
		genHelper(&sb, rng, o, h)
	}

	sb.WriteString("int main() {\n\tint c;\n\tint acc = 7;\n\tint n = 0;\n\tint i;\n")
	sb.WriteString("\tfor (i = 0; i < 128; i++) arr[i] = i * 13;\n")
	sb.WriteString("\tc = getc(0);\n\twhile (c >= 0) {\n")
	nOps := 2 + rng.Intn(o.BodyOps)
	weights := []float64{o.Calls, o.Branchy, o.Bytes, o.Arrays, o.Bytes, o.Loops, o.ALU}
	for k := 0; k < nOps; k++ {
		switch pickWeighted(rng, weights) {
		case 0: // helper call
			fmt.Fprintf(&sb, "\t\tacc = h%d(acc & 255, c);\n", rng.Intn(nHelpers))
		case 1: // data-dependent branch over array traffic
			fmt.Fprintf(&sb, "\t\tif (c %% %d == 0) acc += arr[c & 127]; else acc ^= c << %d;\n",
				2+rng.Intn(5), rng.Intn(5))
		case 2: // byte store
			sb.WriteString("\t\tbuf[n & 255] = c + acc;\n")
		case 3: // word store
			fmt.Fprintf(&sb, "\t\tarr[(acc + n) & 127] = acc %% %d;\n", 3+rng.Intn(97))
		case 4: // byte load folded into the accumulator
			sb.WriteString("\t\tacc = acc * 31 + buf[(acc >> 3) & 255];\n")
		case 5: // bounded data-dependent inner loop
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&sb, "\t\twhile (acc > %d) acc = acc / 2 - n;\n", 1000+rng.Intn(5000))
			} else {
				fmt.Fprintf(&sb, "\t\tfor (i = 0; i < (c & %d); i++) acc += arr[(acc + i) & 127] >> (i & 7);\n",
					3+rng.Intn(13))
			}
		default: // scalar ALU work
			fmt.Fprintf(&sb, "\t\tacc = (acc ^ (c * %d)) + (n %% %d);\n",
				3+rng.Intn(29), 2+rng.Intn(11))
		}
	}
	sb.WriteString("\t\tn++;\n\t\tc = getc(0);\n\t}\n")
	// Checksum: fold the byte buffer back in so stores matter, then print.
	sb.WriteString("\tfor (i = 0; i < 256; i++) acc = acc * 3 + buf[i];\n")
	sb.WriteString("\tputc('A' + (acc % 26 + 26) % 26);\n")
	sb.WriteString("\tputc('a' + (n % 26 + 26) % 26);\n")
	sb.WriteString("\tputc('0' + ((acc >> 7) % 10 + 10) % 10);\n")
	sb.WriteString("\tputc('\\n');\n\treturn 0;\n}\n")
	return sb.String()
}

// genHelper emits helper function h: a loop, a branch chain, byte-wide
// work, or a bounded recursion, weighted by the options.
func genHelper(sb *strings.Builder, rng *rand.Rand, o GenOptions, h int) {
	fmt.Fprintf(sb, "int h%d(int a, int b) {\n", h)
	switch pickWeighted(rng, []float64{o.Loops, o.Branchy, 0.6 * (1 + o.Calls), o.Bytes}) {
	case 0: // bounded loop over the word array
		sb.WriteString("\tint r = 0;\n\tint i;\n")
		fmt.Fprintf(sb, "\tfor (i = 0; i < (a & 15); i++) r += arr[(b + i) & 127] ^ i;\n")
		sb.WriteString("\treturn r;\n")
	case 1: // branch chain
		fmt.Fprintf(sb, "\tif (a %% %d == 0) return b * 3 + 1;\n", 2+rng.Intn(4))
		sb.WriteString("\tif (a < b) return a - b;\n\treturn a + b;\n")
	case 2: // Euclid-style bounded recursion (terminates: b strictly shrinks)
		fmt.Fprintf(sb, "\tif (b == 0) return a;\n\treturn h%d(b, a %% b);\n", h)
	default: // byte traffic
		sb.WriteString("\tchar t;\n\tt = buf[(a ^ b) & 255];\n")
		fmt.Fprintf(sb, "\tbuf[(a + b) & 255] = t + %d;\n\treturn t + (a >> 1);\n", 1+rng.Intn(7))
	}
	sb.WriteString("}\n")
}

// GenInput returns a deterministic pseudo-random input stream of printable
// bytes for a generated program.
func GenInput(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(32 + rng.Intn(90))
	}
	return buf
}
