package difftest

import (
	"testing"
)

// TestSnapshotOracleGeneratedPrograms is the durability sweep: generated
// programs (the same rotating feature mix as the main oracle sweep) run
// through the snapshot matrix with seed-randomized checkpoint cadences and
// restore points. Every divergence fails with the generator seed, so the
// exact case replays with:
//
//	go run ./cmd/difftest -snapshot 1 -seed <seed>
func TestSnapshotOracleGeneratedPrograms(t *testing.T) {
	trials := 200
	if testing.Short() {
		trials = 12
	}
	matrix := SnapshotMatrix()
	for trial := 0; trial < trials; trial++ {
		seed := int64(1000 + trial)
		opts := genProfiles[trial%len(genProfiles)]
		src := Generate(seed, opts)
		c, err := CompileCase("gen.mc", src, GenInput(seed*2, 180+int(seed%120)), GenInput(seed*2+1, 180+int((seed+7)%120)))
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		rep, err := c.SnapshotOracle(matrix, uint64(seed)*0x9e3779b9)
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		for _, d := range rep.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged; program:\n%s", seed, src)
		}
	}
}
