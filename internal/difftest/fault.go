package difftest

import (
	"bytes"
	"errors"
	"fmt"

	"fgpsim/internal/core"
	"fgpsim/internal/faultinject"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// FaultMatrix returns the variants the fault-injection oracle sweeps: one
// representative of every dynamic engine family (faults are injected into
// the dynamic engine's window and predictor, so the static machine is out
// of scope).
func FaultMatrix() []Variant {
	cfg := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode, pk machine.PredictorKind) machine.Config {
		im, _ := machine.IssueModelByID(issue)
		mc, _ := machine.MemConfigByID(mem)
		return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm, Predictor: pk}
	}
	return []Variant{
		{cfg(machine.Dyn4, 8, 'D', machine.EnlargedBB, machine.TwoBit), false},
		{cfg(machine.Dyn256, 8, 'A', machine.SingleBB, machine.GSharePredictor), false},
		{cfg(machine.Dyn256, 8, 'A', machine.Perfect, machine.TwoBit), false},
		{cfg(machine.Dyn256, 8, 'D', machine.FillUnit, machine.TwoBit), false},
	}
}

// faultRate and faultCap bound one injected run: enough injections to
// exercise every repair path, few enough that the replay cost stays small.
const (
	faultRate = 0.02
	faultCap  = 25
)

// FaultOracle runs the case under seeded fault injection and checks the
// repair contract for every variant × seed:
//
//   - with the repairable fault set (DefaultKinds), the run either finishes
//     with output byte-identical to the interpreter — and, for every
//     non-fill-unit configuration, identical retired node/block counts to
//     an uninjected run (the repairs are architecturally invisible) — or
//     fails with a typed *core.UnrecoverableFaultError (a machine check:
//     an injected violation reached irreversible state). Panics and
//     silently wrong output are always violations.
//   - with ArchBit (corrupting committed memory), the run must surface a
//     typed *core.UnrecoverableFaultError, never wrong output.
//   - injection accounting holds: the engine counted exactly the events the
//     injector applied, and repairs never exceed injections (CheckStats).
//
// The fill unit is exempt from the retired-count comparison because a
// fault-induced refetch can resolve through a different run-time-enlarged
// block; its output must still match.
func (c *Case) FaultOracle(vs []Variant, seeds []uint64) (*Report, error) {
	rep := &Report{Case: c}
	for _, v := range vs {
		if !v.Cfg.Disc.Dynamic() {
			return nil, fmt.Errorf("difftest: %s: fault oracle needs a dynamic discipline, got %s", c.Name, v)
		}
		img, err := loader.Load(c.Prog, v.Cfg, c.EF)
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: load %s: %w", c.Name, v, err)
		}
		var hints map[ir.BlockID]bool
		if v.Hinted {
			hints = c.Hints
		}
		clean, err := core.Run(img, c.In, c.In1, c.Ref.Trace, hints, core.Limits{MaxCycles: maxCycles})
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: clean run %s: %w", c.Name, v, err)
		}

		for _, seed := range seeds {
			inj := faultinject.New(faultinject.Options{Seed: seed, Rate: faultRate, MaxInjections: faultCap})
			res, err := runHooked(img, c, hints, inj)
			c.checkFaultRun(rep, v, seed, inj, res, err, clean, false)

			// ArchBit: one corruption of committed memory must machine-check.
			arch := faultinject.New(faultinject.Options{
				Seed: seed, Rate: 1, Kinds: []faultinject.Kind{faultinject.ArchBit}, MaxInjections: 1,
			})
			res, err = runHooked(img, c, hints, arch)
			c.checkFaultRun(rep, v, seed, arch, res, err, clean, true)
		}
	}
	c.checkEFCorruption(rep)
	return rep, nil
}

// runHooked runs one injected simulation, converting a panic into an error
// so the oracle can report it as a contract violation instead of dying.
func runHooked(img *loader.Image, c *Case, hints map[ir.BlockID]bool, inj *faultinject.Injector) (res *core.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return core.Run(img, c.In, c.In1, c.Ref.Trace, hints, core.Limits{MaxCycles: maxCycles, Fault: inj.Hook()})
}

// checkFaultRun applies the repair contract to one injected run.
func (c *Case) checkFaultRun(rep *Report, v Variant, seed uint64, inj *faultinject.Injector,
	res *core.RunResult, err error, clean *core.RunResult, archOnly bool) {
	tag := func(format string, args ...any) string {
		return fmt.Sprintf("seed %d (%d injected): %s", seed, inj.Injected(), fmt.Sprintf(format, args...))
	}
	if err != nil {
		var mc *core.UnrecoverableFaultError
		if !errors.As(err, &mc) {
			rep.add(v, "fault", "%s", tag("run died untyped: %v", err))
		}
		return
	}
	if archOnly && inj.Injected() > 0 {
		rep.add(v, "fault", "%s", tag("arch-state corruption did not machine-check"))
		return
	}
	if !bytes.Equal(res.Output, c.Ref.Output) {
		rep.add(v, "fault", "%s", tag("repaired run output differs from reference"))
	}
	if v.Cfg.Branch != machine.FillUnit {
		if res.Stats.RetiredNodes != clean.Stats.RetiredNodes {
			rep.add(v, "fault", "%s", tag("retired %d nodes, uninjected run retired %d",
				res.Stats.RetiredNodes, clean.Stats.RetiredNodes))
		}
		if res.Stats.RetiredBlocks != clean.Stats.RetiredBlocks {
			rep.add(v, "fault", "%s", tag("retired %d blocks, uninjected run retired %d",
				res.Stats.RetiredBlocks, clean.Stats.RetiredBlocks))
		}
	}
	if res.Stats.InjectedFaults != int64(inj.Injected()) {
		rep.add(v, "fault", "%s", tag("engine counted %d injections, injector applied %d",
			res.Stats.InjectedFaults, inj.Injected()))
	}
	for _, msg := range CheckStats(res.Stats) {
		rep.add(v, "stats", "%s", tag("%s", msg))
	}
}

// checkEFCorruption corrupts the case's enlargement file and checks the
// degradation contract: the translating loader either rejects the file with
// a typed *loader.BadEnlargementError — in which case the single-block
// image still runs to the correct output — or the corruption happened to be
// structurally harmless, in which case the enlarged run itself must still
// produce the correct output. Panics and wrong output are violations.
func (c *Case) checkEFCorruption(rep *Report) {
	v := Variant{}
	v.Cfg = machine.Config{Disc: machine.Dyn4, Branch: machine.EnlargedBB}
	v.Cfg.Issue, _ = machine.IssueModelByID(8)
	v.Cfg.Mem, _ = machine.MemConfigByID('A')
	for seed := uint64(1); seed <= 3; seed++ {
		bad := faultinject.CorruptEnlargement(c.EF, seed)
		img, err := func() (img *loader.Image, err error) {
			defer func() {
				if r := recover(); r != nil {
					img, err = nil, fmt.Errorf("panic: %v", r)
				}
			}()
			return loader.Load(c.Prog, v.Cfg, bad)
		}()
		if err != nil {
			var be *loader.BadEnlargementError
			if !errors.As(err, &be) {
				rep.add(v, "fault", "ef seed %d: corrupt enlargement rejected untyped: %v", seed, err)
				continue
			}
			fallback := v.Cfg
			fallback.Branch = machine.SingleBB
			img, err = loader.Load(c.Prog, fallback, bad)
			if err != nil {
				rep.add(v, "fault", "ef seed %d: degraded single-block load failed: %v", seed, err)
				continue
			}
		}
		res, err := core.Run(img, c.In, c.In1, c.Ref.Trace, nil, core.Limits{MaxCycles: maxCycles})
		if err != nil {
			rep.add(v, "fault", "ef seed %d: degraded run failed: %v", seed, err)
			continue
		}
		if !bytes.Equal(res.Output, c.Ref.Output) {
			rep.add(v, "fault", "ef seed %d: degraded run output differs from reference", seed)
		}
	}
}
