package difftest

import (
	"fmt"

	"fgpsim/internal/core"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// checkMetamorphic evaluates the cross-configuration (metamorphic)
// invariants over a finished matrix:
//
//  1. Perfect prediction is an upper bound: for any (discipline, issue,
//     memory, window) present in both perfect and realistic-predictor
//     enlarged form, the perfect run never takes more cycles — wrong-path
//     work only ever adds squash and refetch latency. The bound holds only
//     for fault-free runs: when enlarged blocks assert-fault, a realistic
//     predictor's squashes can reshape window occupancy around the faulting
//     block and make its single-block replay a few cycles cheaper than
//     under perfect prediction (observed: 8 cycles in ~22k against 488
//     faults), so faulting runs are exempt. (Output equality of enlargement
//     itself — single vs enlarged blocks — is already enforced per-variant
//     by the oracle's reference comparison.)
//  2. Pool recycling is invisible: re-running a dynamic configuration in
//     the same process (which reuses the engine's node/block pools warmed
//     by the first run) reproduces the first run's pipeline event stream
//     and cycle count exactly.
func (c *Case) checkMetamorphic(rep *Report) {
	// 1. Perfect-prediction cycle bound.
	type key struct {
		d      machine.Discipline
		issue  int
		mem    byte
		window int
	}
	perfect := make(map[key]VariantRun)
	for _, r := range rep.Runs {
		if r.Variant.Cfg.Branch == machine.Perfect {
			perfect[key{r.Variant.Cfg.Disc, r.Variant.Cfg.Issue.ID, r.Variant.Cfg.Mem.ID, r.Variant.Cfg.WindowOverride}] = r
		}
	}
	for _, r := range rep.Runs {
		if r.Variant.Cfg.Branch != machine.EnlargedBB {
			continue
		}
		p, ok := perfect[key{r.Variant.Cfg.Disc, r.Variant.Cfg.Issue.ID, r.Variant.Cfg.Mem.ID, r.Variant.Cfg.WindowOverride}]
		if !ok || p.Stats.Faults > 0 || r.Stats.Faults > 0 {
			continue
		}
		if p.Stats.Cycles > r.Stats.Cycles {
			rep.add(p.Variant, "metamorphic", "perfect prediction took %d cycles, realistic %s only %d",
				p.Stats.Cycles, r.Variant, r.Stats.Cycles)
		}
	}

	// 2. Pool recycling leaves the pipeline event stream bit-identical.
	v := Variant{Cfg: machine.Config{Disc: machine.Dyn4, Branch: machine.EnlargedBB}}
	v.Cfg.Issue, _ = machine.IssueModelByID(8)
	v.Cfg.Mem, _ = machine.MemConfigByID('A')
	if msg := c.checkPoolRecycling(v); msg != "" {
		rep.add(v, "pipelog", "%s", msg)
	}
}

// checkPoolRecycling runs one dynamic configuration twice on the same image
// and compares the recorded pipeline event streams. The first run leaves
// the core package's slab pools warm, so the second run executes entirely
// on recycled nodes and blocks; any stale state the reset paths miss shows
// up as a diverging event. Returns "" when the streams match.
func (c *Case) checkPoolRecycling(v Variant) string {
	img, err := loader.Load(c.Prog, v.Cfg, c.EF)
	if err != nil {
		return fmt.Sprintf("load: %v", err)
	}
	run := func() (*core.PipeLog, *core.RunResult, error) {
		pipe := &core.PipeLog{MaxCycles: 512}
		res, err := core.Run(img, c.In, c.In1, nil, nil, core.Limits{MaxCycles: maxCycles, Pipe: pipe})
		return pipe, res, err
	}
	pipe1, res1, err := run()
	if err != nil {
		return fmt.Sprintf("first run: %v", err)
	}
	pipe2, res2, err := run()
	if err != nil {
		return fmt.Sprintf("recycled run: %v", err)
	}
	if res1.Stats.Cycles != res2.Stats.Cycles {
		return fmt.Sprintf("recycled run took %d cycles, fresh run %d", res2.Stats.Cycles, res1.Stats.Cycles)
	}
	if d := diffPipeLogs(pipe1, pipe2); d != "" {
		return d
	}
	return ""
}

// diffPipeLogs compares two pipeline event streams and describes the first
// difference ("" when identical).
func diffPipeLogs(a, b *core.PipeLog) string {
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	for i := 0; i < n; i++ {
		if a.Events[i] != b.Events[i] {
			return fmt.Sprintf("event %d differs: fresh {c%d %s #%d %s}, recycled {c%d %s #%d %s}",
				i, a.Events[i].Cycle, a.Events[i].Kind, a.Events[i].Seq, a.Events[i].What,
				b.Events[i].Cycle, b.Events[i].Kind, b.Events[i].Seq, b.Events[i].What)
		}
	}
	if len(a.Events) != len(b.Events) {
		return fmt.Sprintf("fresh run logged %d events, recycled run %d", len(a.Events), len(b.Events))
	}
	return ""
}
