package difftest

import (
	"bytes"
	"fmt"

	"fgpsim/internal/branch"
	"fgpsim/internal/core"
	"fgpsim/internal/enlarge"
	"fgpsim/internal/interp"
	"fgpsim/internal/ir"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
	"fgpsim/internal/stats"
)

// Variant is one point of the oracle matrix: a machine configuration plus
// whether the profile-derived static hints seed its branch predictor (the
// paper's static-hint scheme is an input to the 2-bit counters, not a
// Config field, so it is a matrix axis of its own).
type Variant struct {
	Cfg    machine.Config
	Hinted bool
}

func (v Variant) String() string {
	if v.Hinted {
		return v.Cfg.String() + "+hints"
	}
	return v.Cfg.String()
}

// Case is one program prepared for the oracle, following the paper's
// two-input methodology: profile (and build enlargement chains) on
// ProfileIn/ProfileIn1, measure on In/In1 (the second stream serves
// programs that read both, like the dictionary examples; leave it nil
// otherwise).
type Case struct {
	Name string
	Src  string // MiniC source; "" when Prog was built directly
	Prog *ir.Program

	ProfileIn  []byte
	ProfileIn1 []byte
	In         []byte
	In1        []byte

	// Derived during prepare.
	Profile *interp.Profile
	EF      *enlarge.File
	Hints   map[ir.BlockID]bool
	Ref     *interp.Result
}

// maxNodes bounds functional runs; maxCycles bounds timed runs. Generated
// programs are far below these — hitting a bound means a runaway program,
// which the oracle reports as an error rather than a divergence.
const (
	maxNodes  = 1 << 24
	maxCycles = 1 << 28
)

// CompileCase compiles a MiniC program and runs the two functional passes
// (profile on profileIn, reference+trace on in) that the oracle needs.
func CompileCase(name, src string, profileIn, in []byte) (*Case, error) {
	prog, err := minic.Compile(name, src, minic.Options{Optimize: true})
	if err != nil {
		return nil, fmt.Errorf("difftest: compile %s: %w", name, err)
	}
	c := &Case{Name: name, Src: src, Prog: prog, ProfileIn: profileIn, In: in}
	if err := c.Prepare(); err != nil {
		return nil, err
	}
	return c, nil
}

// PrepareCase wraps an already-built program (assembled or hand-constructed)
// for the oracle.
func PrepareCase(name string, prog *ir.Program, profileIn, in []byte) (*Case, error) {
	c := &Case{Name: name, Prog: prog, ProfileIn: profileIn, In: in}
	if err := c.Prepare(); err != nil {
		return nil, err
	}
	return c, nil
}

// Prepare runs the two functional passes on a caller-populated Case (for
// cases that need the second input stream, build the struct and call this
// directly; CompileCase and PrepareCase cover the stream-0-only shape).
func (c *Case) Prepare() error {
	c.Profile = interp.NewProfile()
	if _, err := interp.Run(c.Prog, c.ProfileIn, c.ProfileIn1, interp.Options{Profile: c.Profile, MaxNodes: maxNodes}); err != nil {
		return fmt.Errorf("difftest: %s: profile run: %w", c.Name, err)
	}
	c.EF = enlarge.Build(c.Prog, c.Profile, enlarge.DefaultOptions())
	c.Hints = branch.HintsFromProfile(c.Profile.Taken, c.Profile.NotTaken)
	ref, err := interp.Run(c.Prog, c.In, c.In1, interp.Options{RecordTrace: true, MaxNodes: maxNodes})
	if err != nil {
		return fmt.Errorf("difftest: %s: reference run: %w", c.Name, err)
	}
	c.Ref = ref
	return nil
}

// Divergence is one oracle violation: a timed run that broke the contract
// with the reference interpreter or an invariant between configurations.
type Divergence struct {
	Variant Variant
	Kind    string // "output", "retired-nodes", "retired-blocks", "stats", "arc-profile", "metamorphic", "pipelog"
	Msg     string
}

func (d Divergence) String() string {
	return fmt.Sprintf("%s [%s]: %s", d.Variant, d.Kind, d.Msg)
}

// VariantRun pairs a matrix point with its measured statistics.
type VariantRun struct {
	Variant Variant
	Stats   *stats.Run
}

// Report is the outcome of running one case through the oracle matrix.
type Report struct {
	Case        *Case
	Runs        []VariantRun
	Divergences []Divergence
}

// Failed reports whether any divergence was found.
func (r *Report) Failed() bool { return len(r.Divergences) > 0 }

func (r *Report) add(v Variant, kind, format string, args ...any) {
	r.Divergences = append(r.Divergences, Divergence{Variant: v, Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// Matrix returns the full oracle matrix: dynamic disciplines crossed with
// {bare 2-bit, statically hinted 2-bit, gshare} predictors and
// {single, enlarged} block modes, perfect prediction for the two
// speculative window sizes the paper studies, the static machine in both
// block modes, and the fill unit. Issue models and memory configurations
// are spread across the points so cache and multi-issue paths stay covered
// without multiplying the matrix out.
func Matrix() []Variant {
	cfg := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode, pk machine.PredictorKind) machine.Config {
		im, _ := machine.IssueModelByID(issue)
		mc, _ := machine.MemConfigByID(mem)
		return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm, Predictor: pk}
	}
	var vs []Variant
	add := func(c machine.Config, hinted bool) { vs = append(vs, Variant{c, hinted}) }

	// Static machine, both block modes.
	add(cfg(machine.Static, 4, 'A', machine.SingleBB, machine.TwoBit), false)
	add(cfg(machine.Static, 8, 'D', machine.EnlargedBB, machine.TwoBit), false)

	// Dynamic × predictor × block mode.
	for _, d := range []machine.Discipline{machine.Dyn4, machine.Dyn256} {
		for _, bm := range []machine.BranchMode{machine.SingleBB, machine.EnlargedBB} {
			add(cfg(d, 8, 'A', bm, machine.TwoBit), false)
			add(cfg(d, 5, 'D', bm, machine.TwoBit), true) // static-hint variant
			add(cfg(d, 8, 'G', bm, machine.GSharePredictor), false)
		}
		// Perfect prediction (always an enlarged-block image).
		add(cfg(d, 8, 'A', machine.Perfect, machine.TwoBit), false)
	}

	// Small window and the fill unit.
	add(cfg(machine.Dyn1, 2, 'C', machine.EnlargedBB, machine.TwoBit), false)
	add(cfg(machine.Dyn256, 8, 'D', machine.FillUnit, machine.TwoBit), false)
	return vs
}

// QuickMatrix is the reduced matrix the fuzz targets use: one
// representative of every engine family (static, dynamic single, dynamic
// enlarged, perfect, fill unit, gshare) so a fuzz iteration stays cheap.
func QuickMatrix() []Variant {
	cfg := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode, pk machine.PredictorKind) machine.Config {
		im, _ := machine.IssueModelByID(issue)
		mc, _ := machine.MemConfigByID(mem)
		return machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm, Predictor: pk}
	}
	return []Variant{
		{cfg(machine.Static, 8, 'A', machine.SingleBB, machine.TwoBit), false},
		{cfg(machine.Dyn4, 8, 'D', machine.EnlargedBB, machine.TwoBit), true},
		{cfg(machine.Dyn256, 8, 'A', machine.SingleBB, machine.GSharePredictor), false},
		{cfg(machine.Dyn256, 8, 'A', machine.Perfect, machine.TwoBit), false},
		{cfg(machine.Dyn256, 8, 'D', machine.FillUnit, machine.TwoBit), false},
	}
}

// Oracle runs the case through every matrix variant and cross-checks:
//
//   - architectural output is byte-identical to the interpreter's;
//   - retired node and block counts are architectural: single-block runs
//     match the interpreter exactly, and all enlarged-image runs (enlarged
//     and perfect modes share the loader's re-optimized code) agree with
//     each other regardless of predictor, window, issue width, or memory;
//   - per-run statistics are internally consistent (CheckStats);
//   - the measurement input's arc profile is consistent with itself and
//     with the retired-branch counts of the timed runs (checkArcProfile).
//
// Load or run errors are returned as errors (they are infrastructure
// failures, not divergences); contract violations land in the report.
func (c *Case) Oracle(vs []Variant) (*Report, error) {
	rep := &Report{Case: c}
	type enlargedRef struct {
		v      Variant
		nodes  int64
		blocks int64
	}
	var eref *enlargedRef
	for _, v := range vs {
		if !v.Cfg.Disc.Dynamic() && (v.Cfg.Branch == machine.Perfect || v.Cfg.Branch == machine.FillUnit) {
			return nil, fmt.Errorf("difftest: %s: %s requires a dynamic discipline", c.Name, v)
		}
		img, err := loader.Load(c.Prog, v.Cfg, c.EF)
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: load %s: %w", c.Name, v, err)
		}
		var hints map[ir.BlockID]bool
		if v.Hinted {
			hints = c.Hints
		}
		res, err := core.Run(img, c.In, c.In1, c.Ref.Trace, hints, core.Limits{MaxCycles: maxCycles})
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: run %s: %w", c.Name, v, err)
		}
		rep.Runs = append(rep.Runs, VariantRun{Variant: v, Stats: res.Stats})

		if !bytes.Equal(res.Output, c.Ref.Output) {
			rep.add(v, "output", "got %q, want %q", res.Output, c.Ref.Output)
		}
		switch v.Cfg.Branch {
		case machine.SingleBB:
			if res.Stats.RetiredNodes != c.Ref.RetiredNodes {
				rep.add(v, "retired-nodes", "retired %d nodes, interp retired %d",
					res.Stats.RetiredNodes, c.Ref.RetiredNodes)
			}
			if res.Stats.RetiredBlocks != c.Ref.RetiredBlocks {
				rep.add(v, "retired-blocks", "retired %d blocks, interp retired %d",
					res.Stats.RetiredBlocks, c.Ref.RetiredBlocks)
			}
		case machine.EnlargedBB, machine.Perfect:
			if eref == nil {
				eref = &enlargedRef{v, res.Stats.RetiredNodes, res.Stats.RetiredBlocks}
			} else {
				if res.Stats.RetiredNodes != eref.nodes {
					rep.add(v, "retired-nodes", "retired %d nodes, %s retired %d",
						res.Stats.RetiredNodes, eref.v, eref.nodes)
				}
				if res.Stats.RetiredBlocks != eref.blocks {
					rep.add(v, "retired-blocks", "retired %d blocks, %s retired %d",
						res.Stats.RetiredBlocks, eref.v, eref.blocks)
				}
			}
		}
		for _, msg := range CheckStats(res.Stats) {
			rep.add(v, "stats", "%s", msg)
		}
	}
	c.checkArcProfile(rep)
	c.checkMetamorphic(rep)
	return rep, nil
}

// CheckStats returns the accounting-invariant violations of one run's
// statistics (nil when consistent): executed work covers retired plus
// discarded work, branch accounting stays within bounds, derived rates stay
// in [0,1], and the block-size histogram's mass equals the retired blocks.
func CheckStats(s *stats.Run) []string {
	var msgs []string
	addf := func(format string, args ...any) { msgs = append(msgs, fmt.Sprintf(format, args...)) }
	if s.ExecutedNodes < s.RetiredNodes {
		addf("executed %d < retired %d", s.ExecutedNodes, s.RetiredNodes)
	}
	if s.ExecutedNodes < s.RetiredNodes+s.DiscardedNodes {
		addf("executed %d < retired %d + discarded %d", s.ExecutedNodes, s.RetiredNodes, s.DiscardedNodes)
	}
	if s.BranchesCorrect > s.Branches {
		addf("correct branches %d > branches %d", s.BranchesCorrect, s.Branches)
	}
	if acc := s.PredictionAccuracy(); acc < 0 || acc > 1 {
		addf("prediction accuracy %v out of [0,1]", acc)
	}
	if red := s.Redundancy(); red < 0 || red > 1 {
		addf("redundancy %v out of [0,1]", red)
	}
	if s.RepairedFaults > s.InjectedFaults {
		addf("repaired faults %d > injected faults %d", s.RepairedFaults, s.InjectedFaults)
	}
	var blocks int64
	for _, n := range s.BlockSizes {
		blocks += n
	}
	if blocks != s.RetiredBlocks {
		addf("block-size histogram mass %d != retired blocks %d", blocks, s.RetiredBlocks)
	}
	return msgs
}

// checkArcProfile re-profiles the program on the measurement input and
// checks the profile against itself and against the reference run: block
// execution counts sum to the retired block count, every branch outcome is
// attributed to an executed block, and each conditional block's outgoing
// arcs sum to its taken+not-taken outcomes.
func (c *Case) checkArcProfile(rep *Report) {
	prof := interp.NewProfile()
	res, err := interp.Run(c.Prog, c.In, c.In1, interp.Options{Profile: prof, MaxNodes: maxNodes})
	if err != nil {
		rep.add(Variant{}, "arc-profile", "re-profile run failed: %v", err)
		return
	}
	if !bytes.Equal(res.Output, c.Ref.Output) {
		rep.add(Variant{}, "arc-profile", "interpreter nondeterministic: re-run output differs")
	}
	var blockSum int64
	for _, n := range prof.Blocks {
		blockSum += n
	}
	if blockSum != res.RetiredBlocks {
		rep.add(Variant{}, "arc-profile", "block counts sum to %d, run retired %d blocks",
			blockSum, res.RetiredBlocks)
	}
	for b, taken := range prof.Taken {
		if execs := prof.Blocks[b]; taken+prof.NotTaken[b] > execs {
			rep.add(Variant{}, "arc-profile", "block b%d: %d branch outcomes > %d executions",
				b, taken+prof.NotTaken[b], execs)
		}
	}
	outgoing := make(map[ir.BlockID]int64)
	for a, n := range prof.Arcs {
		outgoing[a.From] += n
		if prof.Blocks[a.From] == 0 {
			rep.add(Variant{}, "arc-profile", "arc b%d->b%d from a block never counted as executed", a.From, a.To)
		}
	}
	for b, n := range outgoing {
		if want := prof.Taken[b] + prof.NotTaken[b]; n != want {
			rep.add(Variant{}, "arc-profile", "block b%d: outgoing arcs %d != taken+nottaken %d", b, n, want)
		}
	}
}
