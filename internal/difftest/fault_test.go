package difftest

import (
	"testing"
)

// TestFaultOracleGeneratedPrograms is the standing fault-injection sweep:
// generated programs run under seeded injection across the dynamic engine
// families, checking that every repairable fault is architecturally
// invisible (output and retired work identical to an uninjected run) and
// that irreversible faults surface as typed machine checks — never as a
// panic or silently wrong output. A failing (program seed, fault seed)
// pair replays with:
//
//	go run ./cmd/difftest -fault 1 -seed <seed>
func TestFaultOracleGeneratedPrograms(t *testing.T) {
	trials := 20
	if testing.Short() {
		trials = 4
	}
	matrix := FaultMatrix()
	for trial := 0; trial < trials; trial++ {
		seed := int64(3000 + trial)
		opts := genProfiles[trial%len(genProfiles)]
		src := Generate(seed, opts)
		c, err := CompileCase("gen.mc", src, GenInput(seed*2, 180+int(seed%120)), GenInput(seed*2+1, 180+int((seed+7)%120)))
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		faultSeeds := []uint64{uint64(seed), uint64(seed) * 0x9e3779b9, 0xdeadbeef}
		rep, err := c.FaultOracle(matrix, faultSeeds)
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		for _, d := range rep.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged; program:\n%s", seed, src)
		}
	}
}
