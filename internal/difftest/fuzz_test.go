package difftest

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fgpsim/internal/core"
	"fgpsim/internal/interp"
	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/minic"
)

// corpusSources reads the checked-in seed corpus. Every file is a MiniC
// program; the corpus is shared by the fuzz targets (as f.Add seeds) and by
// TestCorpusOracle (as pinned full-matrix cases).
func corpusSources(t testing.TB) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		t.Fatal(err)
	}
	srcs := make(map[string]string)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".mc") {
			continue
		}
		data, err := os.ReadFile(filepath.Join("testdata", "corpus", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		srcs[e.Name()] = string(data)
	}
	if len(srcs) == 0 {
		t.Fatal("empty seed corpus")
	}
	return srcs
}

// TestCorpusOracle pins every corpus program as a full-matrix golden case,
// so corpus entries stay green even when the fuzz stages are not running.
func TestCorpusOracle(t *testing.T) {
	for name, src := range corpusSources(t) {
		t.Run(name, func(t *testing.T) {
			c, err := CompileCase(name, src, GenInput(101, 300), GenInput(102, 300))
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Oracle(Matrix())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range rep.Divergences {
				t.Errorf("%s", d)
			}
		})
	}
}

// fuzzGate cheaply rejects fuzz candidates that are too big or too slow to
// differential-test: oversized sources, non-compiling sources, and programs
// that exceed a small node budget functionally. Returns the compiled
// program, or nil to skip.
func fuzzGate(src string, in []byte) bool {
	if len(src) > 8<<10 {
		return false
	}
	prog, err := minic.Compile("fuzz.mc", src, minic.Options{Optimize: true})
	if err != nil {
		return false
	}
	if _, err := interp.Run(prog, in, nil, interp.Options{MaxNodes: 1 << 20}); err != nil {
		return false
	}
	return true
}

// FuzzDifferential mutates MiniC source and a program input together and
// cross-checks every surviving candidate against the reduced oracle matrix.
// Crashes land in testdata/fuzz/ (Go's native corpus location); shrink them
// further with:
//
//	go run ./cmd/difftest -reduce <crasher.mc>
func FuzzDifferential(f *testing.F) {
	for _, src := range corpusSources(f) {
		f.Add(src, []byte("the quick brown fox 12345 jumps!\n"))
	}
	f.Add("int main() { putc(getc(0)); return 0; }", []byte{0})
	matrix := QuickMatrix()
	f.Fuzz(func(t *testing.T, src string, in []byte) {
		if len(in) > 512 {
			in = in[:512]
		}
		if !fuzzGate(src, in) {
			t.Skip()
		}
		c, err := CompileCase("fuzz.mc", src, in, in)
		if err != nil {
			t.Skip() // runaway under the larger profile budget
		}
		rep, err := c.Oracle(matrix)
		if err != nil {
			t.Fatalf("oracle error: %v\nprogram:\n%s", err, src)
		}
		if rep.Failed() {
			var msgs []string
			for _, d := range rep.Divergences {
				msgs = append(msgs, d.String())
			}
			t.Fatalf("divergence:\n%s\nprogram:\n%s", strings.Join(msgs, "\n"), src)
		}
	})
}

// FuzzLoaderRoundtrip checks that translating-loader images survive
// serialization: an image marshalled and unmarshalled must disassemble to
// the same program and simulate to the identical output and cycle count.
func FuzzLoaderRoundtrip(f *testing.F) {
	for _, src := range corpusSources(f) {
		f.Add(src)
	}
	cfgs := []machine.Config{}
	mk := func(d machine.Discipline, issue int, mem byte, bm machine.BranchMode) {
		im, _ := machine.IssueModelByID(issue)
		mc, _ := machine.MemConfigByID(mem)
		cfgs = append(cfgs, machine.Config{Disc: d, Issue: im, Mem: mc, Branch: bm})
	}
	mk(machine.Static, 8, 'D', machine.EnlargedBB)
	mk(machine.Dyn256, 8, 'A', machine.EnlargedBB)
	f.Fuzz(func(t *testing.T, src string) {
		in := GenInput(33, 128)
		if !fuzzGate(src, in) {
			t.Skip()
		}
		c, err := CompileCase("fuzz.mc", src, in, in)
		if err != nil {
			t.Skip()
		}
		for _, cfg := range cfgs {
			img, err := loader.Load(c.Prog, cfg, c.EF)
			if err != nil {
				t.Fatalf("%s: load: %v\nprogram:\n%s", cfg, err, src)
			}
			data, err := img.Marshal()
			if err != nil {
				t.Fatalf("%s: marshal: %v", cfg, err)
			}
			img2, err := loader.Unmarshal(data)
			if err != nil {
				t.Fatalf("%s: unmarshal: %v\nprogram:\n%s", cfg, err, src)
			}
			run := func(im *loader.Image) *core.RunResult {
				res, err := core.Run(im, c.In, nil, nil, nil, core.Limits{MaxCycles: maxCycles})
				if err != nil {
					t.Fatalf("%s: run: %v\nprogram:\n%s", cfg, err, src)
				}
				return res
			}
			r1, r2 := run(img), run(img2)
			if !bytes.Equal(r1.Output, r2.Output) {
				t.Fatalf("%s: roundtripped image output %q, original %q\nprogram:\n%s",
					cfg, r2.Output, r1.Output, src)
			}
			if r1.Stats.Cycles != r2.Stats.Cycles {
				t.Fatalf("%s: roundtripped image took %d cycles, original %d\nprogram:\n%s",
					cfg, r2.Stats.Cycles, r1.Stats.Cycles, src)
			}
		}
	})
}
