package difftest

import (
	"testing"

	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
)

// exactStatic returns the variant list with every static variant flipped
// to the exact scheduler — the opt-in -sched=exact mode, pushed through
// whatever harness the caller pairs it with.
func exactStatic(vs []Variant) []Variant {
	out := make([]Variant, len(vs))
	copy(out, vs)
	n := 0
	for i := range out {
		if out[i].Cfg.Disc == machine.Static {
			out[i].Cfg.Sched = machine.ExactSched
			n++
		}
	}
	if n == 0 {
		panic("difftest: matrix has no static variants to flip")
	}
	return out
}

// TestExactSchedMatrix runs generated programs through the full oracle
// matrix with the static variants using -sched=exact images: outputs stay
// byte-identical to the reference interpreter and retired node/block
// counts architectural. Exact scheduling reorders words, never semantics —
// any divergence here means the exact scheduler broke a legality rule the
// engine relies on.
func TestExactSchedMatrix(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	matrix := exactStatic(Matrix())
	for trial := 0; trial < trials; trial++ {
		seed := int64(7000 + trial)
		opts := genProfiles[trial%len(genProfiles)]
		src := Generate(seed, opts)
		c, err := CompileCase("gen.mc", src, GenInput(seed*2, 180+int(seed%120)), GenInput(seed*2+1, 180+int((seed+7)%120)))
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		rep, err := c.Oracle(matrix)
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		for _, d := range rep.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("seed %d diverged under -sched=exact; program:\n%s", seed, src)
		}
		if got := len(rep.Runs); got != len(matrix) {
			t.Fatalf("seed %d: %d runs, want %d", seed, got, len(matrix))
		}
	}
}

// TestSnapshotOracleExactSched: checkpoint/restore of an exact-scheduled
// static run is bit-identical — the snapshot fingerprint covers the
// scheduler kind (a list-scheduled snapshot must not resume into an
// exact-scheduled image), and resumed runs reproduce the straight run
// exactly. Only the static variants matter, so the sweep is restricted to
// them.
func TestSnapshotOracleExactSched(t *testing.T) {
	var static []Variant
	for _, v := range exactStatic(SnapshotMatrix()) {
		if v.Cfg.Disc == machine.Static {
			static = append(static, v)
		}
	}
	if len(static) == 0 {
		t.Fatal("snapshot matrix lost its static variants")
	}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		seed := int64(8200 + trial)
		opts := genProfiles[trial%len(genProfiles)]
		src := Generate(seed, opts)
		c, err := CompileCase("gen.mc", src, GenInput(seed*2, 160), GenInput(seed*2+1, 160))
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		rep, err := c.SnapshotOracle(static, uint64(seed))
		if err != nil {
			t.Fatalf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
		for _, d := range rep.Divergences {
			t.Errorf("seed %d: %s", seed, d)
		}
		if t.Failed() {
			t.Fatalf("seed %d snapshot oracle diverged under -sched=exact; program:\n%s", seed, src)
		}
	}
}

// TestExactImageFingerprintDistinct: the scheduler kind must be part of
// the image identity — resuming a list-scheduled snapshot into an
// exact-scheduled image (or sharing a cached image across the two) would
// silently replay against different words.
func TestExactImageFingerprintDistinct(t *testing.T) {
	seed := int64(7400)
	src := Generate(seed, DefaultGenOptions())
	c, err := CompileCase("gen.mc", src, GenInput(seed*2, 120), GenInput(seed*2+1, 120))
	if err != nil {
		t.Fatal(err)
	}
	im, _ := machine.IssueModelByID(8)
	mc, _ := machine.MemConfigByID('D')
	cfg := machine.Config{Disc: machine.Static, Issue: im, Mem: mc, Branch: machine.SingleBB}
	list, err := loader.Load(c.Prog, cfg, c.EF)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sched = machine.ExactSched
	ex, err := loader.Load(c.Prog, cfg, c.EF)
	if err != nil {
		t.Fatal(err)
	}
	if list.Fingerprint() == ex.Fingerprint() {
		t.Fatal("list- and exact-scheduled images share a fingerprint")
	}
	// The exact image must differ only in schedules, never in code.
	if got, want := len(ex.Words), len(list.Words); got != want {
		t.Fatalf("schedule count differs: %d vs %d", got, want)
	}
}
