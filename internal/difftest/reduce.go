package difftest

import (
	"fmt"

	"fgpsim/internal/minic"
)

// Fails is the failure predicate driving reduction: it reports whether a
// candidate program still exhibits the failure under investigation (oracle
// divergence, engine panic reproduced under recover, ...). The reducer only
// calls it with candidates that compile, so predicates may assume
// compilability and need not guard against parse errors.
type Fails func(src string) bool

// Reduce shrinks a failing MiniC program while the failure keeps
// reproducing, by deleting whole functions, globals, and statements, and by
// hoisting loop/branch bodies over their headers. The input must compile
// and fail; the result is a 1-minimal program under those edits: no single
// remaining deletion keeps it failing. Reduction is deterministic.
//
// The returned program compiles and satisfies fails. Typical corpus
// crashers (hundreds of statements) come back with a handful.
func Reduce(src string, fails Fails) (string, error) {
	if _, err := minic.Compile("reduce.mc", src, minic.Options{Optimize: true}); err != nil {
		return "", fmt.Errorf("difftest: reduce: input does not compile: %w", err)
	}
	if !fails(src) {
		return "", fmt.Errorf("difftest: reduce: input does not reproduce the failure")
	}
	// Canonicalize through the printer once so candidate texts are stable.
	cur := reformat(src)
	if compiles(cur) && fails(cur) {
		src = cur
	}
	for {
		improved := false
		// Walk candidate edits from the back so accepting one leaves the
		// indices of the edits still to try unchanged.
		for i := countEdits(src) - 1; i >= 0; i-- {
			candidate, ok := applyEdit(src, i)
			if !ok || candidate == src {
				continue
			}
			if !compiles(candidate) || !fails(candidate) {
				continue
			}
			src = candidate
			improved = true
		}
		if !improved {
			return src, nil
		}
	}
}

func compiles(src string) bool {
	_, err := minic.Compile("reduce.mc", src, minic.Options{Optimize: true})
	return err == nil
}

func reformat(src string) string {
	f, err := minic.Parse("reduce.mc", src)
	if err != nil {
		return src
	}
	return minic.Format(f)
}

// CountStatements returns the number of statements in a program's function
// bodies (blocks and empty statements excluded — they carry no behavior).
// It is the size metric reduction results are reported in.
func CountStatements(src string) int {
	f, err := minic.Parse("count.mc", src)
	if err != nil {
		return -1
	}
	n := 0
	for _, fn := range f.Funcs {
		walkStmts(fn.Body, func(s minic.Stmt) {
			switch s.(type) {
			case *minic.BlockStmt, *minic.EmptyStmt, nil:
			default:
				n++
			}
		})
	}
	return n
}

// walkStmts visits s and every statement nested inside it, preorder.
func walkStmts(s minic.Stmt, visit func(minic.Stmt)) {
	if s == nil {
		return
	}
	visit(s)
	switch s := s.(type) {
	case *minic.BlockStmt:
		for _, inner := range s.List {
			walkStmts(inner, visit)
		}
	case *minic.IfStmt:
		walkStmts(s.Then, visit)
		walkStmts(s.Else, visit)
	case *minic.WhileStmt:
		walkStmts(s.Body, visit)
	case *minic.ForStmt:
		// The init clause is part of the loop header, not a counted
		// statement of its own.
		walkStmts(s.Body, visit)
	}
}

// The edit enumeration: parse the program fresh, walk it in a fixed order
// counting edit opportunities, and apply the k-th one. Edits are:
//
//   - delete function i (main is kept — removing it never compiles);
//   - delete global i;
//   - delete one statement from a statement list;
//   - hoist a loop or branch body over its header (if → then-branch,
//     if/else → else-branch, while/for → body), which lets the reducer
//     strip control flow that deletion alone cannot remove without losing
//     the interesting statements inside.
type editor struct {
	target  int
	n       int
	applied bool
}

// countEdits returns how many distinct edits are available on src.
func countEdits(src string) int {
	f, err := minic.Parse("reduce.mc", src)
	if err != nil {
		return 0
	}
	e := &editor{target: -1}
	e.file(f)
	return e.n
}

// applyEdit applies the k-th edit to src and returns the printed result.
func applyEdit(src string, k int) (string, bool) {
	f, err := minic.Parse("reduce.mc", src)
	if err != nil {
		return "", false
	}
	e := &editor{target: k}
	f = e.file(f)
	if !e.applied {
		return "", false
	}
	return minic.Format(f), true
}

// at reports whether the current edit slot is the target.
func (e *editor) at() bool {
	hit := e.n == e.target
	e.n++
	if hit {
		e.applied = true
	}
	return hit
}

func (e *editor) file(f *minic.File) *minic.File {
	for i, fn := range f.Funcs {
		if fn.Name != "main" && e.at() {
			f.Funcs = append(f.Funcs[:i:i], f.Funcs[i+1:]...)
			return f
		}
	}
	for i := range f.Globals {
		if e.at() {
			f.Globals = append(f.Globals[:i:i], f.Globals[i+1:]...)
			return f
		}
	}
	for _, fn := range f.Funcs {
		fn.Body = e.block(fn.Body)
	}
	return f
}

func (e *editor) block(b *minic.BlockStmt) *minic.BlockStmt {
	if b == nil || e.applied {
		return b
	}
	for i, s := range b.List {
		if e.applied {
			break
		}
		if e.at() {
			b.List = append(b.List[:i:i], b.List[i+1:]...)
			return b
		}
		b.List[i] = e.stmt(s)
	}
	return b
}

// stmt offers the hoisting edits for s and recurses into nested bodies. It
// returns the (possibly replaced) statement.
func (e *editor) stmt(s minic.Stmt) minic.Stmt {
	if e.applied {
		return s
	}
	switch s := s.(type) {
	case *minic.BlockStmt:
		return e.block(s)
	case *minic.IfStmt:
		if e.at() {
			return s.Then
		}
		if s.Else != nil && e.at() {
			return s.Else
		}
		s.Then = e.stmt(s.Then)
		if s.Else != nil {
			s.Else = e.stmt(s.Else)
		}
	case *minic.WhileStmt:
		if e.at() {
			return s.Body
		}
		s.Body = e.stmt(s.Body)
	case *minic.ForStmt:
		if e.at() {
			return s.Body
		}
		s.Body = e.stmt(s.Body)
	}
	return s
}
