package difftest

import (
	"fmt"

	"fgpsim/internal/loader"
	"fgpsim/internal/machine"
	"fgpsim/internal/sched"
	"fgpsim/internal/sched/exact"
)

// The schedule oracle is the static scheduler's differential check: for
// every block of a loaded static image, the list schedule must be legal
// (sched.Validate), the exact branch-and-bound schedule must be legal, and
// the list schedule's planned length must never beat the exact one — exact
// is seeded with the list schedule, so "list < exact" means one of the
// schedulers or the shared legality contract is broken, and "exact < list"
// with Proved status is the measured optimality gap, which is fine. On top
// of the per-schedule checks it verifies the exact scheduler's own claims:
// Length measures its schedule, LowerBound never exceeds Length, and a
// Proved result has Length == LowerBound.

// ScheduleMatrix returns the static variants the schedule oracle sweeps:
// issue models from sequential to widest crossed with both block modes
// (enlargement changes block sizes drastically, which is exactly what
// stresses the packing), across two memory configurations so both hit
// latencies shape the DAG.
func ScheduleMatrix() []Variant {
	cfg := func(issue int, mem byte, bm machine.BranchMode) machine.Config {
		im, _ := machine.IssueModelByID(issue)
		mc, _ := machine.MemConfigByID(mem)
		return machine.Config{Disc: machine.Static, Issue: im, Mem: mc, Branch: bm}
	}
	return []Variant{
		{cfg(1, 'A', machine.SingleBB), false},
		{cfg(2, 'D', machine.SingleBB), false},
		{cfg(8, 'A', machine.SingleBB), false},
		{cfg(4, 'D', machine.EnlargedBB), false},
		{cfg(8, 'G', machine.EnlargedBB), false},
	}
}

// ScheduleOracle checks every block of every static variant's image
// against the exact scheduler. Infrastructure failures (load errors,
// non-static variants) return an error; contract violations land in the
// report as "schedule" divergences.
func (c *Case) ScheduleOracle(vs []Variant, o exact.Options) (*Report, error) {
	rep := &Report{Case: c}
	for _, v := range vs {
		if v.Cfg.Disc != machine.Static {
			return nil, fmt.Errorf("difftest: %s: schedule oracle needs static variants, got %s", c.Name, v)
		}
		img, err := loader.Load(c.Prog, v.Cfg, c.EF)
		if err != nil {
			return nil, fmt.Errorf("difftest: %s: load %s: %w", c.Name, v, err)
		}
		hitLat := v.Cfg.Mem.HitLatency
		for _, b := range img.Prog.Blocks {
			if b == nil {
				continue
			}
			list, ok := img.Words[b.ID]
			if !ok {
				rep.add(v, "schedule", "block b%d has no schedule", b.ID)
				continue
			}
			if err := sched.Validate(b, v.Cfg.Issue, hitLat, list); err != nil {
				rep.add(v, "schedule", "block b%d: list schedule illegal: %v", b.ID, err)
				continue
			}
			listLen := sched.PlannedCycles(b, v.Cfg.Issue, hitLat, list)
			r := exact.Schedule(b, v.Cfg.Issue, hitLat, o)
			if err := sched.Validate(b, v.Cfg.Issue, hitLat, r.Schedule); err != nil {
				rep.add(v, "schedule", "block b%d: exact schedule illegal: %v", b.ID, err)
				continue
			}
			if got := sched.PlannedCycles(b, v.Cfg.Issue, hitLat, r.Schedule); got != r.Length {
				rep.add(v, "schedule", "block b%d: exact Length %d but schedule measures %d", b.ID, r.Length, got)
			}
			if r.Length > listLen {
				rep.add(v, "schedule", "block b%d: list length %d beats exact %d (%s)",
					b.ID, listLen, r.Length, r.Status)
			}
			if r.LowerBound > r.Length {
				rep.add(v, "schedule", "block b%d: lower bound %d above length %d", b.ID, r.LowerBound, r.Length)
			}
			if r.Status == exact.Proved && r.LowerBound != r.Length {
				rep.add(v, "schedule", "block b%d: proved with bound gap %d < %d", b.ID, r.LowerBound, r.Length)
			}
		}
	}
	return rep, nil
}
