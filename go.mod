module fgpsim

go 1.22
