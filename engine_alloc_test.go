package fgpsim

import (
	"testing"

	"fgpsim/internal/exp"
)

// TestEngineAllocRegression bounds the dynamic engine's steady-state
// allocation rate. With the structure-of-arrays stores and the intrusive
// ready queues (internal/core/soa.go) a run allocates a few thousand
// objects total — slab growth, rings, and map growth — which amortizes to
// well under 0.2 allocations per simulated cycle. The seed engine
// allocated ~10 per cycle, so these bounds leave generous headroom for
// host variance while still failing loudly if per-node or per-block
// allocation ever creeps back into the hot loop.
func TestEngineAllocRegression(t *testing.T) {
	w := workload(t)
	for _, tc := range []struct {
		name  string
		cfg   Config
		bound float64 // max allocations per simulated cycle
	}{
		{"Dyn4Single", exp.MustConfigFor(exp.Curve{Disc: Dyn4, Branch: SingleBB}, 8, 'A'), 0.5},
		{"Dyn256Enlarged", exp.MustConfigFor(exp.Curve{Disc: Dyn256, Branch: EnlargedBB}, 8, 'A'), 1.0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the per-workload image cache so the measured runs see
			// only the engine's own allocations.
			s, err := w.Run(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			cycles := s.Cycles
			if cycles == 0 {
				t.Fatal("run reported zero cycles")
			}
			avg := testing.AllocsPerRun(2, func() {
				if _, err := w.Run(tc.cfg); err != nil {
					t.Error(err)
				}
			})
			perCycle := avg / float64(cycles)
			t.Logf("%s: %.0f allocs over %d cycles = %.4f allocs/cycle (bound %.2f)",
				tc.name, avg, cycles, perCycle, tc.bound)
			if perCycle > tc.bound {
				t.Errorf("%s allocates %.4f objects per simulated cycle, above the %.2f regression bound",
					tc.name, perCycle, tc.bound)
			}
		})
	}
}

// TestBatchedAllocRegression extends the steady-state bound to the batched
// path: a K-lane core.RunBatch allocates K engines' worth of slabs up
// front, and its checkpoint-off hot loop must stay as allocation-free as
// the scalar engine's, so the per-cycle amortized rate obeys the same
// bound.
func TestBatchedAllocRegression(t *testing.T) {
	w := workload(t)
	lanes := batchLanePool()[:4]
	run := func() int64 {
		stats, errs, err := w.RunBatch(lanes)
		if err != nil {
			t.Fatal(err)
		}
		var cycles int64
		for i, s := range stats {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			cycles += s.Cycles
		}
		return cycles
	}
	cycles := run() // warm the shared image cache
	if cycles == 0 {
		t.Fatal("batch reported zero cycles")
	}
	avg := testing.AllocsPerRun(2, func() { run() })
	perCycle := avg / float64(cycles)
	const bound = 1.0
	t.Logf("Batched4: %.0f allocs over %d cycles = %.4f allocs/cycle (bound %.2f)", avg, cycles, perCycle, bound)
	if perCycle > bound {
		t.Errorf("batched run allocates %.4f objects per simulated cycle, above the %.2f regression bound",
			perCycle, bound)
	}
}
